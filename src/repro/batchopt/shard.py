"""Process-pool sharding of slab optimization (§4.2's parallel POSP).

Runs on the persistent :mod:`repro.par` worker pool, but each worker
runs the **batch** kernel over its whole shard instead of one scalar
optimize per location — the parent pays only plan unpickling and
registration.  The ``(optimizer, space)`` payload ships to each worker
at most once per content digest, and shard results are reassembled in
submission order, so the parent registers plans in the same (row-major)
order a serial slab sweep would and plan ids stay deterministic at any
worker count.
"""

from __future__ import annotations

from typing import Iterator, List, Tuple

from ..ess.space import Location, SelectivitySpace
from ..exceptions import EssError
from ..optimizer.optimizer import Optimizer
from ..optimizer.plans import PlanNode

__all__ = ["parallel_optimize_batch"]


def _optimize_slab(ctx, payload, locations: List[Location]):
    # repro.par task: payload = (optimizer, space); workers never trace
    # (the payload's tracer degraded to the null tracer while pickling).
    optimizer, space = payload
    assignments = [space.assignment_at(location) for location in locations]
    results = optimizer.optimize_batch(space.query, assignments)
    return [
        (location, result.plan, result.cost, result.rows)
        for location, result in zip(locations, results)
    ]


def parallel_optimize_batch(
    optimizer: Optimizer,
    space: SelectivitySpace,
    locations: List[Location],
    workers: int,
) -> Iterator[Tuple[Location, PlanNode, float, float]]:
    """Batch-optimize ``locations`` across ``workers`` processes.

    Yields ``(location, plan, cost, rows)`` in the input location order.
    Start-method resolution (fork-preferred, verified-spawn fallback)
    and payload pickle hardening live in :mod:`repro.par`.
    """
    from ..par import ParError, get_pool

    chunk_size = max(1, len(locations) // workers + (len(locations) % workers > 0))
    chunks = [
        locations[i : i + chunk_size] for i in range(0, len(locations), chunk_size)
    ]
    tracer = optimizer.tracer
    if tracer.enabled:
        tracer.event(
            "batchopt.parallel_fanout",
            workers=workers,
            slabs=len(chunks),
            locations=len(locations),
        )
    pool = get_pool(workers, tracer=tracer)
    try:
        results = pool.run(_optimize_slab, (optimizer, space), chunks, tracer=tracer)
    except ParError as exc:
        raise EssError(f"parallel batch compilation failed: {exc}") from exc
    for chunk_result in results:
        yield from chunk_result
