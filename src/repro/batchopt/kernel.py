"""Batch-vectorized DPsize join enumeration over ESS location slabs.

The scalar optimizer runs one full DPsize enumeration per ESS location;
a D-dimensional grid therefore pays thousands of redundant DP runs that
differ only in leaf selectivities.  This kernel runs the enumeration
**once per query shape** while carrying a numpy cost axis over a *slab*
of locations:

* the selectivity assignment becomes a column table — each pid maps to
  a python float (constant over the slab) or a 1-D array of
  per-location values — and every operator cost formula evaluates
  elementwise through the ordinary :class:`~repro.optimizer.plans`
  arithmetic;
* the DP table keeps, per connected subset, a *frontier* of plans that
  are cheapest at >= 1 location (a per-location argmin over the cost
  axis) instead of a single winner;
* join candidates for a subset are generated per (left winner, right
  winner) pair actually realised somewhere in the slab, and candidate
  costs update the running minimum only under that pair's location
  mask.

The masked updates replicate the scalar DP's semantics *per location*
exactly — including its first-candidate-wins tie-breaking (strict ``<``
against the running best) — so the batch result at every location
provably equals the scalar :meth:`Optimizer.optimize` result, and the
two engines may be used interchangeably (the benches assert this).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from ..catalog.schema import Schema
from ..exceptions import OptimizerError, QueryError
from ..optimizer.cost_model import CostModel
from ..optimizer.joinorder import JoinEnumerator, access_paths
from ..optimizer.plans import Aggregate, CostContext, PlanNode
from ..query.query import Query

__all__ = ["BatchPlanChoice", "batch_best_plans", "stack_assignments"]


@dataclass
class BatchPlanChoice:
    """Per-location winners of one batch enumeration.

    ``plans`` is the top-level frontier (every plan optimal somewhere in
    the slab); ``winner[i]`` indexes into it for location ``i``;
    ``cost``/``rows`` are the winning estimates, one entry per location.
    """

    plans: List[PlanNode]
    winner: np.ndarray
    cost: np.ndarray
    rows: np.ndarray

    def __len__(self) -> int:
        return len(self.winner)

    @property
    def frontier_size(self) -> int:
        return len(self.plans)

    def plan_at(self, index: int) -> PlanNode:
        return self.plans[int(self.winner[index])]


def stack_assignments(
    assignments: Sequence[Mapping[str, float]],
) -> Tuple[Dict[str, object], int]:
    """Turn per-location assignments into slab columns.

    Each pid maps to a python float when its value is constant across
    the slab (the common case: only error-dimension pids vary) or to a
    1-D float array otherwise.  Constant pids keep leaf estimates scalar,
    which the frontier selection broadcasts lazily.
    """
    if not assignments:
        raise OptimizerError("optimize_batch needs at least one location")
    first = assignments[0]
    pids = set(first)
    columns: Dict[str, object] = {}
    for assignment in assignments[1:]:
        if set(assignment) != pids:
            raise QueryError(
                "batch assignments must cover identical predicate sets"
            )
    for pid in first:
        values = [assignment[pid] for assignment in assignments]
        head = values[0]
        if all(value == head for value in values[1:]):
            columns[pid] = float(head)
        else:
            columns[pid] = np.asarray(values, dtype=float)
    return columns, len(assignments)


def validate_columns(query: Query, columns: Mapping[str, object], length: int):
    """Slab-aware counterpart of ``selectivity.validate_assignment``."""
    expected = set(query.predicate_ids)
    got = set(columns)
    if expected - got:
        missing = ", ".join(sorted(expected - got))
        raise QueryError(f"assignment is missing selectivities for: {missing}")
    for pid, column in columns.items():
        values = np.asarray(column, dtype=float)
        if values.ndim not in (0, 1) or (values.ndim == 1 and values.size != length):
            raise QueryError(
                f"selectivity column for {pid!r} does not match slab length"
            )
        if np.any(values <= 0.0) or np.any(values > 1.0):
            raise QueryError(f"selectivity for {pid!r} out of (0, 1]")


class _FrontierBuilder:
    """Running per-location argmin over an ordered candidate stream.

    Mirrors the scalar DP's ``entry is None or cost < entry.cost``
    update: the running best starts at +inf and a candidate takes a
    location only where it is *strictly* cheaper, so the first candidate
    (in enumeration order) wins every tie, exactly as in the scalar
    path.  ``mask`` restricts a candidate to the locations where its
    child winner pair is actually realised.
    """

    def __init__(self, length: int):
        self.length = length
        self.plans: List[PlanNode] = []
        self.cost = np.full(length, np.inf)
        self.rows = np.full(length, np.nan)
        self.winner = np.full(length, -1, dtype=np.intp)

    def _full(self, value) -> np.ndarray:
        array = np.asarray(value, dtype=float)
        if array.ndim == 0:
            return np.broadcast_to(array, (self.length,))
        return array

    def offer(self, plan: PlanNode, cost, rows, mask: Optional[np.ndarray] = None):
        cost = self._full(cost)
        rows = self._full(rows)
        take = cost < self.cost
        if mask is not None:
            take &= mask
        if not take.any():
            # Still record the plan so winner indices stay aligned with
            # the enumeration; compacted away below.
            self.plans.append(plan)
            return
        index = len(self.plans)
        self.plans.append(plan)
        self.cost[take] = cost[take]
        self.rows[take] = rows[take]
        self.winner[take] = index

    def finish(self) -> "_Frontier":
        if (self.winner < 0).any():
            raise OptimizerError("batch enumeration left locations unplanned")
        kept = np.unique(self.winner)
        remap = np.full(len(self.plans), -1, dtype=np.intp)
        remap[kept] = np.arange(len(kept), dtype=np.intp)
        return _Frontier(
            plans=[self.plans[int(i)] for i in kept],
            winner=remap[self.winner],
            cost=self.cost,
            rows=self.rows,
        )


@dataclass
class _Frontier:
    """Compacted subset entry: only plans that win >= 1 location remain."""

    plans: List[PlanNode]
    winner: np.ndarray
    cost: np.ndarray
    rows: np.ndarray


def _winner_pairs(
    left: _Frontier, right: _Frontier, length: int
) -> List[Tuple[int, int, Optional[np.ndarray]]]:
    """(left index, right index, mask) for every realised winner pair.

    A ``None`` mask means the pair is the winner everywhere (the common
    single-plan-frontier case, which keeps the fast path branch-free).
    """
    if len(left.plans) == 1 and len(right.plans) == 1:
        return [(0, 0, None)]
    key = left.winner * len(right.plans) + right.winner
    pairs: List[Tuple[int, int, Optional[np.ndarray]]] = []
    for packed in np.unique(key):
        i, j = divmod(int(packed), len(right.plans))
        pairs.append((i, j, key == packed))
    return pairs


def batch_best_plans(
    query: Query,
    schema: Schema,
    cost_model: CostModel,
    columns: Mapping[str, object],
    length: int,
    enumerator: Optional[JoinEnumerator] = None,
) -> BatchPlanChoice:
    """Run the frontier DP over one slab; returns per-location winners.

    ``columns`` is the slab column table from :func:`stack_assignments`;
    ``enumerator`` is the query's (cached) :class:`JoinEnumerator` for
    multi-table queries.
    """
    ctx = CostContext.for_slab(schema, cost_model, columns)

    if len(query.tables) == 1:
        builder = _FrontierBuilder(length)
        for path in access_paths(query, query.tables[0]):
            est = path.estimate(ctx)
            builder.offer(path, est.cost, est.rows)
        top = builder.finish()
    else:
        if enumerator is None:
            enumerator = JoinEnumerator(query, schema)
        top = _enumerate_joins(enumerator, cost_model, ctx, length)

    if query.aggregate:
        top = _wrap_aggregate(query, top, ctx, length)
    return BatchPlanChoice(
        plans=top.plans, winner=top.winner, cost=top.cost, rows=top.rows
    )


def _enumerate_joins(
    enumerator: JoinEnumerator,
    cost_model: CostModel,
    ctx: CostContext,
    length: int,
) -> _Frontier:
    frontiers: Dict[FrozenSet[str], _Frontier] = {}

    for table in enumerator.tables:
        builder = _FrontierBuilder(length)
        for path in enumerator.access_path_candidates(table):
            est = path.estimate(ctx)
            builder.offer(path, est.cost, est.rows)
        frontiers[frozenset((table,))] = builder.finish()

    subsets_by_size: Dict[int, List[FrozenSet[str]]] = {}
    for subset in enumerator.partitions:
        subsets_by_size.setdefault(len(subset), []).append(subset)

    for size in range(2, len(enumerator.tables) + 1):
        for subset in subsets_by_size.get(size, []):
            builder = _FrontierBuilder(length)
            for left_set, right_set, join_pids in enumerator.partitions[subset]:
                left = frontiers.get(left_set)
                right = frontiers.get(right_set)
                if left is None or right is None:
                    continue
                for i, j, mask in _winner_pairs(left, right, length):
                    for plan in enumerator.join_candidates(
                        left.plans[i],
                        right.plans[j],
                        left_set,
                        right_set,
                        join_pids,
                        cost_model,
                    ):
                        est = plan.estimate(ctx)
                        builder.offer(plan, est.cost, est.rows, mask)
            try:
                frontiers[subset] = builder.finish()
            except OptimizerError:
                raise OptimizerError(
                    f"no join plan found for subset {sorted(subset)}"
                ) from None

    top = frontiers.get(frozenset(enumerator.tables))
    if top is None:
        raise OptimizerError("join enumeration failed to cover all tables")
    return top


def _wrap_aggregate(
    query: Query, top: _Frontier, ctx: CostContext, length: int
) -> _Frontier:
    """Wrap each frontier winner in the query's aggregate and re-cost it.

    The scalar path wraps its single winner and re-costs the whole tree;
    child estimates are memoized in the slab context, so each wrap only
    pays the aggregate node's own arithmetic.
    """
    cost = np.empty(length)
    rows = np.empty(length)
    plans: List[PlanNode] = []
    for index, plan in enumerate(top.plans):
        aggregate = Aggregate(plan, query.group_by)
        est = aggregate.estimate(ctx)
        mask = top.winner == index
        cost[mask] = np.broadcast_to(np.asarray(est.cost, dtype=float), (length,))[mask]
        rows[mask] = np.broadcast_to(np.asarray(est.rows, dtype=float), (length,))[mask]
        plans.append(aggregate)
    return _Frontier(plans=plans, winner=top.winner.copy(), cost=cost, rows=rows)
