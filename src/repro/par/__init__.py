"""repro.par — the parallel-execution substrate.

One persistent, reusable worker pool (fork-preferred, verified-spawn
fallback) with per-worker payload caching keyed by content digest and
shared-memory numpy planes, shared by parallel POSP generation
(:mod:`repro.ess.diagram`), slab batch compilation
(:mod:`repro.batchopt.shard`), the sweep residue
(:mod:`repro.sweep.shard`), and wlgen campaigns
(:mod:`repro.wlgen.campaign`).
"""

from .pool import (
    ParError,
    PoolStats,
    WorkerContext,
    WorkerPool,
    encode_payload,
    get_pool,
    shutdown_pools,
)
from .shm import (
    ShmArray,
    export_array,
    leaked_segments,
    live_segment_names,
    release_segments,
)

__all__ = [
    "ParError",
    "PoolStats",
    "ShmArray",
    "WorkerContext",
    "WorkerPool",
    "encode_payload",
    "export_array",
    "get_pool",
    "leaked_segments",
    "live_segment_names",
    "release_segments",
    "shutdown_pools",
]
