"""Persistent worker pool with digest-keyed payload caching.

This replaces the four per-call ``ctx.Pool`` sites (parallel POSP, slab
batch compile, sweep residue, wlgen campaigns) with one substrate:

* **Persistent + reusable** — ``get_pool(workers)`` hands back a live
  pool keyed by ``(start method, worker count)``; workers are started
  once and survive across calls, so repeated shards pay no
  fork/spawn/interpreter-boot tax.  ``shutdown_pools()`` (also wired to
  ``atexit``) tears everything down.
* **Fork-preferred, verified-spawn fallback** — the start method
  resolution and the pickle-round-trip hardening that used to be
  copy-pasted four times live here once: under a non-fork method every
  new payload digest is verified to survive ``pickle.loads`` in the
  parent before any worker sees it, so an unpicklable payload fails
  fast with a clear error instead of crashing inside queue machinery.
* **Per-worker payload caching keyed by content digest** — a payload
  (optimizer + space, bouquet, campaign config) is pickled once per
  call, hashed, and shipped to each worker at most once per digest;
  subsequent calls with a byte-identical payload ship nothing.  Workers
  keep the decoded object plus a derived-state memo
  (:meth:`WorkerContext.memo`), so e.g. a campaign environment is
  rebuilt once per worker per config, not once per chunk.
* **Deterministic reassembly** — tasks carry their submission index and
  results are reassembled by that index, so the caller sees exactly the
  submission order regardless of which worker finished what when
  (work-stealing off a single shared task queue).  Since every task's
  output is a pure function of ``(payload, item)``, index-sorted
  reassembly makes results bit-identical at any worker count.

Telemetry lands on the tracer passed to :meth:`WorkerPool.run` under
the ``par.*`` namespace: pool reuse, payload ships vs. cache hits,
shipped bytes, per-task latency (worker-measured), task counts.
"""

from __future__ import annotations

import atexit
import hashlib
import multiprocessing as mp
import pickle
import queue as _queue
import threading
import time
import traceback
from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Sequence, Set, Tuple

from ..exceptions import ReproError
from ..obs.tracer import NULL_TRACER, Tracer
from .shm import release_segments

__all__ = [
    "ParError",
    "PoolStats",
    "WorkerContext",
    "WorkerPool",
    "encode_payload",
    "get_pool",
    "shutdown_pools",
]


class ParError(ReproError):
    """The parallel substrate failed (dead worker, bad payload, misuse)."""


#: Per-worker payload-cache capacity.  The parent keeps an LRU of this
#: many digests per worker and sends explicit eviction messages when a
#: digest falls out, so worker-side payload/memo memory stays bounded
#: even when a long-lived pool is fed an endless stream of distinct
#: payloads (every mutated bouquet/config digests differently).
PAYLOAD_CACHE_SLOTS = 8


def encode_payload(payload: Any) -> Tuple[str, bytes]:
    """Pickle ``payload`` and return ``(content digest, blob)``.

    The digest is the payload-cache key: two calls whose payloads pickle
    to the same bytes share one per-worker decode.  Shared-memory planes
    (:class:`repro.par.shm.ShmArray`) pickle by segment name, so a
    bouquet re-wrapped around the same exported planes digests stably.
    """
    blob = pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)
    return hashlib.sha256(blob).hexdigest(), blob


# ---------------------------------------------------------------------------
# Worker side
# ---------------------------------------------------------------------------


class WorkerContext:
    """Per-worker state handed to every task function.

    ``memo(name, builder)`` caches derived state under ``(current
    payload digest, name)`` — e.g. the campaign environment built from a
    config, which survives across chunks and across calls for as long as
    the payload bytes stay identical.
    """

    def __init__(self, worker_id: int):
        self.worker_id = worker_id
        self.payload_digest: Optional[str] = None
        self._memo: Dict[Tuple[Optional[str], str], Any] = {}

    def memo(self, name: str, builder: Callable[[], Any]) -> Any:
        key = (self.payload_digest, name)
        try:
            return self._memo[key]
        except KeyError:
            value = builder()
            self._memo[key] = value
            return value

    def _purge(self, digest: str) -> None:
        """Drop every memo entry derived from an evicted payload digest."""
        for key in [k for k in self._memo if k[0] == digest]:
            del self._memo[key]


def _worker_main(worker_id: int, ctrl, tasks, results) -> None:
    """Worker loop: steal tasks, decode payloads on first sight, reply.

    Workers never trace: payload pickling already degraded any embedded
    tracer to the null tracer (``Tracer.__reduce__``), and the parent
    records fan-out/latency telemetry itself.  The control queue carries
    ``("ship", digest, blob)`` and ``("evict", digest)`` messages; the
    parent guarantees a digest's ship message is enqueued strictly
    before any task naming it, so the drain loop below always
    terminates.  Evictions mirror the parent's per-worker LRU
    (``PAYLOAD_CACHE_SLOTS``), keeping the decoded-payload and memo
    caches bounded for the life of a persistent worker.
    """
    ctx = WorkerContext(worker_id)
    payloads: Dict[Optional[str], Any] = {None: None}
    try:
        while True:
            item = tasks.get()
            if item is None:
                break
            seq, digest, fn, arg = item
            while digest not in payloads:
                message = ctrl.get()
                if message[0] == "ship":
                    _, shipped, blob = message
                    payloads[shipped] = pickle.loads(blob)
                else:
                    _, victim = message
                    payloads.pop(victim, None)
                    ctx._purge(victim)
            ctx.payload_digest = digest
            started = time.perf_counter()
            try:
                value = fn(ctx, payloads[digest], arg)
            except Exception:
                results.put((seq, False, traceback.format_exc(), 0.0))
            else:
                results.put((seq, True, value, time.perf_counter() - started))
    except KeyboardInterrupt:
        pass


# ---------------------------------------------------------------------------
# Parent side
# ---------------------------------------------------------------------------


@dataclass
class PoolStats:
    """Parent-side counters (mirrored into ``par.*`` tracer telemetry)."""

    runs: int = 0
    tasks: int = 0
    payload_ships: int = 0
    payload_hits: int = 0
    ship_bytes: int = 0

    @property
    def reuse_rate(self) -> float:
        """Fraction of runs that reused an already-warm pool."""
        return (self.runs - 1) / self.runs if self.runs > 0 else 0.0


def _resolve_start_method(start_method: Optional[str]) -> str:
    methods = mp.get_all_start_methods()
    if start_method is None:
        return "fork" if "fork" in methods else "spawn"
    if start_method not in methods:
        raise ParError(
            f"start method {start_method!r} unavailable (have {methods})"
        )
    return start_method


class WorkerPool:
    """A persistent pool of worker processes around shared queues.

    One shared task queue (workers steal), one shared result queue, and
    one private control queue per worker (payload broadcast).  ``run``
    is serialized on an internal lock: concurrent callers (e.g. the
    serving layer's compile thread pool, whose threads all reach the one
    shared :func:`get_pool` pool) queue up instead of interleaving
    seq-numbered tuples on the shared task/result queues.
    """

    def __init__(
        self,
        workers: int,
        start_method: Optional[str] = None,
    ):
        if workers < 1:
            raise ParError("WorkerPool needs workers >= 1")
        self.workers = workers
        self.start_method = _resolve_start_method(start_method)
        self.stats = PoolStats()
        self._mp = mp.get_context(self.start_method)
        self._tasks = self._mp.Queue()
        self._results = self._mp.Queue()
        self._ctrl = [self._mp.Queue() for _ in range(workers)]
        self._procs: List[Any] = []
        # Parent-side mirror of each worker's payload cache: an LRU of
        # digests, identical in policy to the worker's (evictions are
        # pushed as control messages), so "don't re-ship" stays truthful.
        self._shipped: List["OrderedDict[str, None]"] = [
            OrderedDict() for _ in range(workers)
        ]
        self._verified: Set[str] = set()
        self._broken = False
        self._closed = False
        self._run_lock = threading.Lock()

    # -- lifecycle ------------------------------------------------------

    @property
    def alive(self) -> bool:
        return not (self._closed or self._broken)

    def _ensure_started(self, tracer: Tracer) -> None:
        if self._procs:
            return
        started = time.perf_counter()
        for wid in range(self.workers):
            proc = self._mp.Process(
                target=_worker_main,
                args=(wid, self._ctrl[wid], self._tasks, self._results),
                daemon=True,
                name=f"repro-par-{self.start_method}-{wid}",
            )
            proc.start()
            self._procs.append(proc)
        if tracer.enabled:
            tracer.count("par.pool.starts")
            tracer.observe("par.pool.start_seconds", time.perf_counter() - started)

    def close(self, timeout: float = 10.0) -> None:
        """Graceful shutdown: drain sentinels, join, reap stragglers."""
        if self._closed:
            return
        self._closed = True
        if self._procs:
            for _ in self._procs:
                self._tasks.put(None)
            deadline = time.monotonic() + timeout
            for proc in self._procs:
                proc.join(max(0.1, deadline - time.monotonic()))
            for proc in self._procs:
                if proc.is_alive():
                    proc.terminate()
                    proc.join(1.0)
        self._close_queues()

    def terminate(self) -> None:
        """Hard stop (dead worker / interrupt): kill workers, free shm."""
        self._closed = True
        self._broken = True
        for proc in self._procs:
            if proc.is_alive():
                proc.terminate()
        for proc in self._procs:
            proc.join(1.0)
        self._close_queues()
        _discard_pool(self)
        release_segments()

    def _close_queues(self) -> None:
        for q in [self._tasks, self._results, *self._ctrl]:
            try:
                q.close()
                q.cancel_join_thread()
            except Exception:
                pass

    # -- execution ------------------------------------------------------

    def run(
        self,
        fn: Callable[..., Any],
        payload: Any,
        items: Sequence[Any],
        tracer: Tracer = NULL_TRACER,
        on_result: Optional[Callable[[int, Any], None]] = None,
    ) -> List[Any]:
        """Evaluate ``fn(ctx, payload, item)`` for every item.

        Returns results in submission (item) order.  ``on_result(seq,
        value)`` streams completions as they land, in completion order.
        A task exception is re-raised here (lowest submission index
        first) after the batch drains, so the pool stays reusable; a
        *dead* worker breaks the pool and raises immediately.

        Thread-safe by serialization: a second thread calling ``run``
        blocks until the first batch fully drains.
        """
        items = list(items)
        with self._run_lock:
            if not self.alive:
                raise ParError("worker pool is closed")
            if not items:
                return []
            try:
                self._ensure_started(tracer)
                self.stats.runs += 1
                if tracer.enabled:
                    tracer.count("par.pool.runs")
                    if self.stats.runs > 1:
                        tracer.count("par.pool.reuse")
                digest = self._ship_payload(payload, tracer)
                for seq, item in enumerate(items):
                    self._tasks.put((seq, digest, fn, item))
                return self._collect(len(items), tracer, on_result)
            except KeyboardInterrupt:
                self.terminate()
                raise

    def _ship_payload(self, payload: Any, tracer: Tracer) -> Optional[str]:
        if payload is None:
            return None
        digest, blob = encode_payload(payload)
        if self.start_method != "fork" and digest not in self._verified:
            try:
                pickle.loads(blob)
            except Exception as exc:
                raise ParError(
                    "payload does not survive a pickle round trip under "
                    f"the {self.start_method!r} start method: {exc}"
                ) from exc
            self._verified.add(digest)
        ships = 0
        for wid in range(self.workers):
            cache = self._shipped[wid]
            if digest in cache:
                cache.move_to_end(digest)
                continue
            cache[digest] = None
            # Evictions go on the wire *before* the ship so the worker
            # frees the old payload/memo in the same drain that decodes
            # the new one.
            while len(cache) > PAYLOAD_CACHE_SLOTS:
                victim, _ = cache.popitem(last=False)
                self._ctrl[wid].put(("evict", victim))
            self._ctrl[wid].put(("ship", digest, blob))
            ships += 1
        hits = self.workers - ships
        self.stats.payload_ships += ships
        self.stats.payload_hits += hits
        self.stats.ship_bytes += len(blob) * ships
        if tracer.enabled:
            if ships:
                tracer.count("par.payload.ships", ships)
                tracer.observe("par.payload.ship_bytes", float(len(blob) * ships))
            if hits:
                tracer.count("par.payload.cache_hits", hits)
        return digest

    def _collect(
        self,
        expected: int,
        tracer: Tracer,
        on_result: Optional[Callable[[int, Any], None]],
    ) -> List[Any]:
        out: List[Any] = [None] * expected
        failures: List[Tuple[int, str]] = []
        callback_error: Optional[Exception] = None
        done = 0
        while done < expected:
            try:
                seq, ok, value, elapsed = self._results.get(timeout=0.5)
            except _queue.Empty:
                dead = [p for p in self._procs if not p.is_alive()]
                if dead:
                    codes = sorted({p.exitcode for p in dead})
                    self.terminate()
                    raise ParError(
                        f"{len(dead)} worker(s) died mid-run "
                        f"(exit codes {codes}); pool terminated"
                    )
                continue
            done += 1
            self.stats.tasks += 1
            if tracer.enabled:
                tracer.count("par.tasks")
            if not ok:
                failures.append((seq, value))
                continue
            if tracer.enabled:
                tracer.observe("par.task_seconds", elapsed)
            out[seq] = value
            if on_result is not None and callback_error is None:
                # A raising callback must not abandon in-flight results
                # on the shared queue — a later run would consume them
                # as its own.  Finish the drain, then re-raise.
                try:
                    on_result(seq, value)
                except Exception as exc:
                    callback_error = exc
        if callback_error is not None:
            raise callback_error
        if failures:
            failures.sort()
            seq, tb = failures[0]
            raise ParError(f"task {seq} failed in a pool worker:\n{tb}")
        return out


# ---------------------------------------------------------------------------
# Process-global pool registry
# ---------------------------------------------------------------------------

_POOLS: Dict[Tuple[str, int], WorkerPool] = {}
_POOLS_LOCK = threading.Lock()


def get_pool(
    workers: int,
    start_method: Optional[str] = None,
    tracer: Tracer = NULL_TRACER,
) -> WorkerPool:
    """The shared persistent pool for ``(start method, worker count)``.

    Broken/closed pools are transparently replaced; callers never cache
    the returned object across calls — re-resolving is how they pick up
    a replacement after a crash.
    """
    method = _resolve_start_method(start_method)
    key = (method, workers)
    with _POOLS_LOCK:
        pool = _POOLS.get(key)
        if pool is not None and pool.alive:
            return pool
        pool = WorkerPool(workers, start_method=method)
        if tracer.enabled:
            tracer.count("par.pool.created")
        _POOLS[key] = pool
        return pool


def _discard_pool(pool: WorkerPool) -> None:
    with _POOLS_LOCK:
        for key, candidate in list(_POOLS.items()):
            if candidate is pool:
                del _POOLS[key]


def shutdown_pools() -> None:
    """Close every registered pool and unlink every shm segment."""
    with _POOLS_LOCK:
        pools = list(_POOLS.values())
        _POOLS.clear()
    for pool in pools:
        pool.close()
    release_segments()


atexit.register(shutdown_pools)
