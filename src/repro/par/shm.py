"""Shared-memory numpy planes for the parallel substrate.

Large read-only arrays — ``PlanCostCache`` cost fields, plan-diagram
plan-id/cost matrices, sweep cohort inputs — used to ride inside the
pickled worker payload, costing one serialize + one deserialize + one
resident copy *per worker per call*.  Here they are exported once into
POSIX shared memory (``multiprocessing.shared_memory``) and the payload
carries only ``(segment name, shape, dtype)``: workers map the segment
and read the plane zero-copy.

Lifecycle is strictly parent-owned:

* :func:`export_array` copies an array into a fresh segment and returns
  a :class:`ShmArray` view.  The parent-side :class:`SegmentRegistry`
  tracks the source array and the view *weakly*: repeated exports of
  the same live array object reuse the same segment (stable payload
  pickle bytes, therefore stable payload digests), and a segment is
  closed + unlinked as soon as both the source and every handed-out
  view are garbage — so a long-lived serving process whose cost planes
  come and go does not pin /dev/shm until shutdown.
* Workers attaching a segment immediately *unregister* it from their
  ``resource_tracker``: the parent unlinks, so a worker-side tracker
  entry would only produce spurious "leaked shared_memory" warnings and
  double-unlink races at worker exit.
* :func:`release_segments` (called by ``shutdown_pools`` and on pool
  teardown/interrupt) closes and unlinks everything.  The bench and the
  lifecycle tests assert ``/dev/shm`` holds none of our segments after
  shutdown — segments are namespaced ``repro_par_*`` to make that
  auditable.
"""

from __future__ import annotations

import os
import secrets
import threading
import weakref
from collections import OrderedDict
from multiprocessing import resource_tracker, shared_memory
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..obs.tracer import NULL_TRACER, Tracer

__all__ = [
    "ShmArray",
    "export_array",
    "release_segments",
    "live_segment_names",
    "leaked_segments",
]

_PREFIX = "repro_par_"


def _attach_plane(name: str, shape: Tuple[int, ...], dtype: str) -> np.ndarray:
    """Worker-side reconstruction: map the segment, return a frozen view.

    If this process already owns a mapping of the segment — the parent
    verifying a spawn payload via ``pickle.loads``, or a forked worker
    that inherited the registry — the view is built over that mapping:
    no second attach, no resource-tracker interaction, no entry in
    ``_ATTACHED``.  Otherwise the segment is mapped once and cached per
    name so repeated payloads referencing the same plane share one
    mapping.  The returned array is a *plain* read-only ndarray (not a
    :class:`ShmArray`): if a worker ever re-pickles a derived slice it
    serializes values, never a dangling segment name.
    """
    shm = _REGISTRY.owned(name)
    if shm is None:
        shm = _ATTACHED.get(name)
        if shm is not None:
            _ATTACHED.move_to_end(name)
    if shm is None:
        # The parent owns unlink.  Python 3.11's SharedMemory has no
        # track= knob and registers every attach with the resource
        # tracker, whose per-type cache is a *set* — under fork the
        # worker shares the parent's tracker, the duplicate register
        # collapses, and the eventual double unregister raises in the
        # tracker process.  Suppress registration for the attach
        # instead, under a lock: the patch is process-global, and a
        # concurrent legitimate registration on another thread must not
        # land in the patch window and be silently swallowed.
        with _TRACKER_LOCK:
            original_register = resource_tracker.register
            resource_tracker.register = lambda *args, **kwargs: None
            try:
                shm = shared_memory.SharedMemory(name=name)
            finally:
                resource_tracker.register = original_register
        _ATTACHED[name] = shm
        _prune_attached()
    array = np.ndarray(shape, dtype=np.dtype(dtype), buffer=shm.buf)
    array.flags.writeable = False
    return array


def _prune_attached() -> None:
    """Close attach-cache mappings that nothing references any more.

    A persistent worker fed an endless stream of payloads would
    otherwise keep every segment it ever mapped resident — including
    segments the parent has long since unlinked, whose pages only the
    worker's stale mapping still pins.  Mappings whose planes are still
    referenced by a live payload refuse to close (``BufferError``) and
    are kept.
    """
    excess = len(_ATTACHED) - _ATTACH_SLOTS
    if excess <= 0:
        return
    for name in list(_ATTACHED):
        if excess <= 0:
            break
        try:
            _ATTACHED[name].close()
        except BufferError:
            continue  # in use by a live decoded payload
        del _ATTACHED[name]
        excess -= 1


_ATTACH_SLOTS = 64
_ATTACHED: "OrderedDict[str, shared_memory.SharedMemory]" = OrderedDict()
_TRACKER_LOCK = threading.Lock()


class ShmArray(np.ndarray):
    """An ndarray view over a shared-memory segment that pickles by name.

    In the parent it behaves exactly like the source array (same values,
    same dtype/shape, read-only).  Pickling it — which only happens when
    it is embedded in a worker payload — emits the ``(name, shape,
    dtype)`` triple instead of the buffer, so shipping a bouquet whose
    cost planes are ``ShmArray`` views costs bytes proportional to the
    metadata, not the grids.
    """

    _shm_name: str

    def __reduce__(self):
        return (_attach_plane, (self._shm_name, self.shape, self.dtype.str))


class _Segment:
    """Book-keeping for one exported segment.

    Holds the only strong reference to the :class:`SharedMemory`; the
    source array and the handed-out :class:`ShmArray` view are tracked
    weakly so their lifetimes drive eviction.
    """

    __slots__ = ("key", "shm", "source_ref", "view_ref", "released")

    def __init__(self, key: int, shm: shared_memory.SharedMemory):
        self.key = key
        self.shm = shm
        self.source_ref: Optional[weakref.ref] = None
        self.view_ref: Optional[weakref.ref] = None
        self.released = False


class SegmentRegistry:
    """Parent-side owner of every exported segment.

    Segments are evicted as soon as *both* ends stop needing them: the
    source array (kept weakly, so e.g. ``PlanCostCache`` LRU-evicting a
    plane in a long-lived serving process releases its shm bytes
    instead of pinning /dev/shm until shutdown) and the exported
    :class:`ShmArray` view (kept weakly, so a segment whose name is
    still embedded in an in-flight payload is never unlinked under the
    workers).  While the source lives, repeated exports return the same
    segment name, keeping payload digests stable across calls.

    Eviction is pid-guarded: forked workers inherit the finalizers, and
    a child's garbage collector must never unlink a segment the parent
    still serves.
    """

    def __init__(self):
        # RLock: weakref finalizers can fire from a GC triggered by an
        # allocation inside a locked section on this same thread.
        self._lock = threading.RLock()
        self._owner_pid = os.getpid()
        self._by_source: Dict[int, _Segment] = {}  # id(source) -> segment
        self._segments: Dict[str, _Segment] = {}  # shm name -> segment

    def export(self, array: np.ndarray, tracer: Tracer = NULL_TRACER) -> ShmArray:
        key = id(array)
        with self._lock:
            segment = self._by_source.get(key)
            if segment is not None and segment.source_ref() is array:
                view = segment.view_ref()
                if view is None:
                    # The previous view died (its payload was dropped);
                    # re-wrap the live segment under the same name so
                    # payload digests stay stable across calls.
                    view = self._wrap(segment, array.shape, array.dtype)
                return view
        source = np.ascontiguousarray(array)
        name = _PREFIX + secrets.token_hex(8)
        shm = shared_memory.SharedMemory(name=name, create=True, size=source.nbytes)
        plane = np.ndarray(source.shape, dtype=source.dtype, buffer=shm.buf)
        plane[...] = source
        if tracer.enabled:
            tracer.count("par.shm.exports")
            tracer.observe("par.shm.bytes", float(source.nbytes))
        segment = _Segment(key, shm)
        segment.source_ref = weakref.ref(array)
        weakref.finalize(array, self._maybe_evict, segment)
        with self._lock:
            view = self._wrap(segment, source.shape, source.dtype)
            self._by_source[key] = segment
            self._segments[name] = segment
        return view

    def _wrap(self, segment: _Segment, shape, dtype) -> ShmArray:
        plane = np.ndarray(shape, dtype=dtype, buffer=segment.shm.buf)
        view = plane.view(ShmArray)
        view._shm_name = segment.shm.name
        view.flags.writeable = False
        segment.view_ref = weakref.ref(view)
        weakref.finalize(view, self._maybe_evict, segment)
        return view

    def _maybe_evict(self, segment: _Segment) -> None:
        """Release the segment once neither source nor view is alive."""
        if os.getpid() != self._owner_pid:
            return  # inherited finalizer in a forked worker: not ours
        with self._lock:
            if segment.released:
                return
            if segment.source_ref() is not None or segment.view_ref() is not None:
                return  # the other holder is still alive; its finalizer will retry
            segment.released = True
            self._segments.pop(segment.shm.name, None)
            if self._by_source.get(segment.key) is segment:
                del self._by_source[segment.key]
        _close_and_unlink(segment.shm)

    def owned(self, name: str) -> Optional[shared_memory.SharedMemory]:
        """This process's own mapping of ``name``, if it exported it.

        Lock-free on purpose: forked workers call this with an
        inherited registry whose lock may have been mid-acquire at fork
        time.  A GIL-atomic dict read is all a lookup needs.
        """
        segment = self._segments.get(name)
        return segment.shm if segment is not None else None

    def names(self) -> List[str]:
        with self._lock:
            return [segment.shm.name for segment in self._segments.values()]

    def release(self) -> None:
        if os.getpid() != self._owner_pid:
            return  # inherited registry in a forked worker: not ours
        with self._lock:
            segments = list(self._segments.values())
            self._segments.clear()
            self._by_source.clear()
            for segment in segments:
                segment.released = True
        for segment in segments:
            _close_and_unlink(segment.shm)


def _close_and_unlink(shm: shared_memory.SharedMemory) -> None:
    try:
        shm.close()
    except Exception:
        pass  # a live view still exports the buffer; unlink regardless
    try:
        shm.unlink()
    except Exception:
        pass  # already gone (e.g. an interrupted earlier release)


_REGISTRY = SegmentRegistry()


def export_array(array: np.ndarray, tracer: Tracer = NULL_TRACER) -> ShmArray:
    """Export ``array`` into shared memory (idempotent per array object)."""
    if isinstance(array, ShmArray):
        return array
    return _REGISTRY.export(array, tracer)


def live_segment_names() -> List[str]:
    """Names of segments currently owned by this process's registry."""
    return _REGISTRY.names()


def release_segments() -> None:
    """Close + unlink every segment this process exported."""
    _REGISTRY.release()


def leaked_segments() -> List[str]:
    """``repro_par_*`` segments still visible in /dev/shm.

    After :func:`release_segments` this must be empty — the bench and
    the shm lifecycle tests gate on it.  On platforms without /dev/shm
    the scan degrades to the registry's own book-keeping.
    """
    root = "/dev/shm"
    if os.path.isdir(root):
        try:
            return sorted(n for n in os.listdir(root) if n.startswith(_PREFIX))
        except OSError:
            pass
    return _REGISTRY.names()
