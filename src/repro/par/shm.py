"""Shared-memory numpy planes for the parallel substrate.

Large read-only arrays — ``PlanCostCache`` cost fields, plan-diagram
plan-id/cost matrices, sweep cohort inputs — used to ride inside the
pickled worker payload, costing one serialize + one deserialize + one
resident copy *per worker per call*.  Here they are exported once into
POSIX shared memory (``multiprocessing.shared_memory``) and the payload
carries only ``(segment name, shape, dtype)``: workers map the segment
and read the plane zero-copy.

Lifecycle is strictly parent-owned:

* :func:`export_array` copies an array into a fresh segment and returns
  a :class:`ShmArray` view.  The parent-side :class:`SegmentRegistry`
  keeps the segment (and the source array, so ``id()`` keying stays
  valid) alive — repeated exports of the *same* array object reuse the
  same segment, which keeps payload pickle bytes (and therefore the
  payload digest) stable across calls.
* Workers attaching a segment immediately *unregister* it from their
  ``resource_tracker``: the parent unlinks, so a worker-side tracker
  entry would only produce spurious "leaked shared_memory" warnings and
  double-unlink races at worker exit.
* :func:`release_segments` (called by ``shutdown_pools`` and on pool
  teardown/interrupt) closes and unlinks everything.  The bench and the
  lifecycle tests assert ``/dev/shm`` holds none of our segments after
  shutdown — segments are namespaced ``repro_par_*`` to make that
  auditable.
"""

from __future__ import annotations

import os
import secrets
import threading
from multiprocessing import resource_tracker, shared_memory
from typing import Dict, List, Tuple

import numpy as np

from ..obs.tracer import NULL_TRACER, Tracer

__all__ = [
    "ShmArray",
    "export_array",
    "release_segments",
    "live_segment_names",
    "leaked_segments",
]

_PREFIX = "repro_par_"


def _attach_plane(name: str, shape: Tuple[int, ...], dtype: str) -> np.ndarray:
    """Worker-side reconstruction: map the segment, return a frozen view.

    The mapped :class:`~multiprocessing.shared_memory.SharedMemory` is
    cached per segment name so repeated payloads referencing the same
    plane share one mapping.  The returned array is a *plain* read-only
    ndarray (not a :class:`ShmArray`): if a worker ever re-pickles a
    derived slice it serializes values, never a dangling segment name.
    """
    shm = _ATTACHED.get(name)
    if shm is None:
        # The parent owns unlink.  Python 3.11's SharedMemory has no
        # track= knob and registers every attach with the resource
        # tracker, whose per-type cache is a *set* — under fork the
        # worker shares the parent's tracker, the duplicate register
        # collapses, and the eventual double unregister raises in the
        # tracker process.  Suppress registration for the attach instead.
        original_register = resource_tracker.register
        resource_tracker.register = lambda *args, **kwargs: None
        try:
            shm = shared_memory.SharedMemory(name=name)
        finally:
            resource_tracker.register = original_register
        _ATTACHED[name] = shm
    array = np.ndarray(shape, dtype=np.dtype(dtype), buffer=shm.buf)
    array.flags.writeable = False
    return array


_ATTACHED: Dict[str, shared_memory.SharedMemory] = {}


class ShmArray(np.ndarray):
    """An ndarray view over a shared-memory segment that pickles by name.

    In the parent it behaves exactly like the source array (same values,
    same dtype/shape, read-only).  Pickling it — which only happens when
    it is embedded in a worker payload — emits the ``(name, shape,
    dtype)`` triple instead of the buffer, so shipping a bouquet whose
    cost planes are ``ShmArray`` views costs bytes proportional to the
    metadata, not the grids.
    """

    _shm_name: str

    def __reduce__(self):
        return (_attach_plane, (self._shm_name, self.shape, self.dtype.str))


class SegmentRegistry:
    """Parent-side owner of every exported segment."""

    def __init__(self):
        self._lock = threading.Lock()
        # id(source) -> (source ref, ShmArray view, SharedMemory)
        self._by_source: Dict[int, Tuple[np.ndarray, ShmArray, shared_memory.SharedMemory]] = {}

    def export(self, array: np.ndarray, tracer: Tracer = NULL_TRACER) -> ShmArray:
        with self._lock:
            entry = self._by_source.get(id(array))
            if entry is not None and entry[0] is array:
                return entry[1]
        source = np.ascontiguousarray(array)
        name = _PREFIX + secrets.token_hex(8)
        shm = shared_memory.SharedMemory(name=name, create=True, size=source.nbytes)
        plane = np.ndarray(source.shape, dtype=source.dtype, buffer=shm.buf)
        plane[...] = source
        view = plane.view(ShmArray)
        view._shm_name = shm.name
        view.flags.writeable = False
        if tracer.enabled:
            tracer.count("par.shm.exports")
            tracer.observe("par.shm.bytes", float(source.nbytes))
        with self._lock:
            self._by_source[id(array)] = (array, view, shm)
        return view

    def names(self) -> List[str]:
        with self._lock:
            return [shm.name for _, _, shm in self._by_source.values()]

    def release(self) -> None:
        with self._lock:
            entries = list(self._by_source.values())
            self._by_source.clear()
        for _, view, shm in entries:
            try:
                shm.close()
            except Exception:
                pass
            try:
                shm.unlink()
            except Exception:
                pass  # already gone (e.g. an interrupted earlier release)


_REGISTRY = SegmentRegistry()


def export_array(array: np.ndarray, tracer: Tracer = NULL_TRACER) -> ShmArray:
    """Export ``array`` into shared memory (idempotent per array object)."""
    if isinstance(array, ShmArray):
        return array
    return _REGISTRY.export(array, tracer)


def live_segment_names() -> List[str]:
    """Names of segments currently owned by this process's registry."""
    return _REGISTRY.names()


def release_segments() -> None:
    """Close + unlink every segment this process exported."""
    _REGISTRY.release()


def leaked_segments() -> List[str]:
    """``repro_par_*`` segments still visible in /dev/shm.

    After :func:`release_segments` this must be empty — the bench and
    the shm lifecycle tests gate on it.  On platforms without /dev/shm
    the scan degrades to the registry's own book-keeping.
    """
    root = "/dev/shm"
    if os.path.isdir(root):
        try:
            return sorted(n for n in os.listdir(root) if n.startswith(_PREFIX))
        except OSError:
            pass
    return _REGISTRY.names()
