"""Bridging the bouquet driver to the real execution engine.

:class:`RealExecutionService` implements the
:class:`~repro.core.runtime.ExecutionService` protocol on top of
:class:`~repro.executor.engine.ExecutionEngine`, including run-time
selectivity monitoring (§5.2): after each spilled execution, the error
node's tuple counter is divided by the product of its (error-free, hence
exactly knowable) input cardinalities, yielding a safe lower bound for
the error selectivity — exact once the node finishes.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Optional, Tuple

import numpy as np

from ..core.bouquet import PlanBouquet
from ..core.runtime import ExecutionOutcome, ExecutionService, LearnedSelectivity
from ..exceptions import ExecutionError
from ..optimizer.plans import IndexLookup, IndexScan, Join, PlanNode, SeqScan
from ..query.predicates import SelectionPredicate
from ..query.query import Query
from .arrays import selection_mask
from .engine import ExecutionEngine


class RealExecutionService(ExecutionService):
    """Executes bouquet plans for real, against generated data."""

    def __init__(self, bouquet: PlanBouquet, engine: ExecutionEngine):
        self.bouquet = bouquet
        self.engine = engine
        self.query: Query = bouquet.space.query
        self._dim_pids = {dim.pid for dim in bouquet.space.dimensions}
        self._cardinality_cache: Dict[str, float] = {}
        self._cache_data_fp: str = engine.database.fingerprint()
        #: Trace of (plan_id, spilled, rows) for analysis/tests.
        self.history: List[Tuple[int, bool, int]] = []

    def _cardinalities(self) -> Dict[str, float]:
        """The cardinality cache, scoped to the engine's current dataset.

        Cached counts are facts about one concrete database; if the
        engine was pointed at different/regenerated data since the last
        lookup, the old entries are stale and the cache starts over.
        """
        fp = self.engine.database.fingerprint()
        if fp != self._cache_data_fp:
            self._cardinality_cache = {}
            self._cache_data_fp = fp
        return self._cardinality_cache

    # ------------------------------------------------------------------

    def _plan(self, plan_id: int) -> PlanNode:
        return self.bouquet.registry.plan(plan_id)

    def run_full(
        self, plan_id: int, budget: float, cancel: Optional[object] = None
    ) -> ExecutionOutcome:
        plan = self._plan(plan_id)
        result = self.engine.execute(self.query, plan, budget=budget, cancel=cancel)
        self.history.append((plan_id, False, result.rows))
        return ExecutionOutcome(
            completed=result.completed,
            cost_spent=result.spent,
            result_rows=result.rows if result.completed else None,
        )

    def run_spilled(
        self,
        plan_id: int,
        budget: float,
        unlearned_pids: FrozenSet[str],
        cancel: Optional[object] = None,
    ) -> ExecutionOutcome:
        plan = self._plan(plan_id)
        result, node = self.engine.execute_spilled(
            self.query, plan, unlearned_pids, budget=budget, cancel=cancel
        )
        self.history.append((plan_id, True, result.rows))
        if node is None:
            # No unlearned error node: behaves like a full run.
            return ExecutionOutcome(
                completed=result.completed,
                cost_spent=result.spent,
                result_rows=result.rows if result.completed else None,
            )
        learned = self._learn(node, result, unlearned_pids)
        # "completed" means the query was answered: the spill-to-store
        # resume ran the whole plan within the budget.  Exactness of the
        # learning is a separate fact — the spill node may have finished
        # even when the resumed plan later hit the cost horizon.
        return ExecutionOutcome(
            completed=result.completed,
            cost_spent=result.spent,
            learned=learned,
            result_rows=result.rows if result.completed else None,
        )

    # ------------------------------------------------------------------
    # Selectivity monitoring (§5.2)
    # ------------------------------------------------------------------

    def _learn(
        self, node: PlanNode, result, unlearned_pids: FrozenSet[str]
    ) -> List[LearnedSelectivity]:
        target_pids = sorted((node.local_pids & unlearned_pids) & self._dim_pids)
        if len(target_pids) != 1:
            # Joint multi-predicate learning cannot be decomposed safely
            # into per-dimension lower bounds; skip (the budget-doubling
            # progression still guarantees termination).
            return []
        pid = target_pids[0]
        tuples_out = result.instrumentation.tuples_out(node)
        exact = result.instrumentation.finished(node)
        denominator = self._denominator(node)
        if denominator <= 0:
            return []
        dim = next(d for d in self.bouquet.space.dimensions if d.pid == pid)
        value = max(tuples_out / denominator, dim.lo)
        return [LearnedSelectivity(pid, float(value), exact=exact)]

    def _denominator(self, node: PlanNode) -> float:
        """Product of the error node's input cardinalities.

        All inputs of the *first* error node are error-free subtrees, so
        their cardinalities are exactly knowable; they are measured once
        on the actual data and cached by subtree signature.
        """
        if isinstance(node, Join):
            left = self._subtree_cardinality(node.left)
            if node.algo == "inl":
                # The inner's residual filters may themselves be error
                # dims (they are local to this join); the denominator
                # must only bake in the error-free ones — like the scan
                # branch below — so the measured ratio stays a valid
                # per-dimension lower bound.
                inner: IndexLookup = node.right  # type: ignore[assignment]
                error_free = tuple(
                    pid for pid in inner.filter_pids if pid not in self._dim_pids
                )
                right = self._filtered_table_cardinality(inner.table, error_free)
            else:
                right = self._subtree_cardinality(node.right)
            return left * right
        if isinstance(node, (SeqScan, IndexScan)):
            # The error predicate sits on a scan; the denominator is the
            # table cardinality filtered by the *other* (error-free) preds.
            other = [
                pid
                for pid in node.local_pids
                if pid not in self._dim_pids
            ]
            return self._filtered_table_cardinality(node.table, tuple(sorted(other)))
        raise ExecutionError(f"cannot compute denominator for {node.signature()}")

    def _subtree_cardinality(self, node: PlanNode) -> float:
        """Exact output cardinality of an error-free subtree (cached)."""
        cache = self._cardinalities()
        key = node.signature()
        cached = cache.get(key)
        if cached is None:
            result = self.engine.execute(self.query, node, budget=None)
            cached = float(result.rows)
            cache[key] = cached
        return cached

    def _filtered_table_cardinality(self, table: str, filter_pids) -> float:
        cache = self._cardinalities()
        key = f"{table}|{','.join(filter_pids)}"
        cached = cache.get(key)
        if cached is None:
            rows = self.engine.schema.table(table).row_count
            if not filter_pids:
                cached = float(rows)
            else:
                data = self.engine.database.table(table)
                batch = {f"{table}.{col}": arr for col, arr in data.items()}
                mask = np.ones(rows, dtype=bool)
                for pid in filter_pids:
                    pred = self.query.predicate(pid)
                    if not isinstance(pred, SelectionPredicate):
                        raise ExecutionError(f"pid {pid!r} is not a selection")
                    mask &= selection_mask(batch, pred)
                cached = float(mask.sum())
            cache[key] = cached
        return cached
