"""An independent reference evaluator for correctness checking.

Evaluates an SPJ(+COUNT/GROUP BY) query directly from its *logical*
definition with plain Python dictionaries and loops — sharing no
operator code, no join machinery, and no batching with the execution
engine — so engine results can be verified against a genuinely
independent oracle (used heavily by the fuzz tests).

This is O(rows · joins) with hash lookups; fine at test scale, not a
performance path.
"""

from __future__ import annotations

from collections import Counter, defaultdict
from typing import Dict, List, Tuple

from ..datagen.database import Database
from ..exceptions import ExecutionError
from ..query.query import Query


def _passes(value, op: str, constant: float) -> bool:
    if op == "=":
        return value == constant
    if op == "<":
        return value < constant
    if op == "<=":
        return value <= constant
    if op == ">":
        return value > constant
    if op == ">=":
        return value >= constant
    if op == "in":
        return value in constant
    raise ExecutionError(f"unsupported operator {op!r}")


def _filtered_rows(database: Database, query: Query, table: str) -> List[dict]:
    """Rows of ``table`` (as dicts) surviving the query's selections."""
    data = database.table(table)
    columns = list(data)
    selections = query.selections_on(table)
    rows = []
    n = database.row_count(table)
    for i in range(n):
        row = {column: data[column][i] for column in columns}
        if all(_passes(row[sel.column], sel.op, sel.value) for sel in selections):
            rows.append(row)
    return rows


def reference_row_count(database: Database, query: Query) -> int:
    """Number of result rows of the query's join, by direct evaluation.

    Tables are joined one at a time along the (connected) join graph,
    each step a dict-index lookup join.
    """
    return len(_materialized_join(database, query, _join_order(query)))


def reference_group_counts(
    database: Database, query: Query
) -> Dict[Tuple, int]:
    """COUNT(*) per group (or {(): total} without GROUP BY)."""
    if not query.group_by:
        return {(): reference_row_count(database, query)}
    counts: Counter = Counter()
    rows = _materialized_join(database, query, _join_order(query))
    for row in rows:
        key = tuple(row[(table, column)] for table, column in query.group_by)
        counts[key] += 1
    return dict(counts)


def _materialized_join(database: Database, query: Query, order: List[str]) -> List[dict]:
    current = [
        {(order[0], column): value for column, value in row.items()}
        for row in _filtered_rows(database, query, order[0])
    ]
    joined = {order[0]}
    for table in order[1:]:
        joins = [
            j for j in query.joins if table in j.tables and j.other(table) in joined
        ]
        rows = _filtered_rows(database, query, table)
        key_cols = [j.column_for(table) for j in joins]
        index: Dict[Tuple, List[dict]] = defaultdict(list)
        for row in rows:
            index[tuple(row[c] for c in key_cols)].append(row)
        next_rows = []
        for partial in current:
            key = tuple(
                partial[(j.other(table), j.column_for(j.other(table)))] for j in joins
            )
            for match in index.get(key, ()):
                merged = dict(partial)
                for column, value in match.items():
                    merged[(table, column)] = value
                next_rows.append(merged)
        current = next_rows
        joined.add(table)
    return current


def _join_order(query: Query) -> List[str]:
    """A join order that keeps every prefix connected."""
    if len(query.tables) == 1:
        return list(query.tables)
    graph = query.join_graph
    order = [sorted(query.tables)[0]]
    remaining = set(query.tables) - set(order)
    while remaining:
        for table in sorted(remaining):
            if any(neighbor in order for neighbor in graph.neighbors(table)):
                order.append(table)
                remaining.discard(table)
                break
        else:  # pragma: no cover - unreachable for connected graphs
            raise ExecutionError("disconnected join graph")
    return order
