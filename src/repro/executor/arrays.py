"""Vectorized array helpers for the execution engine.

Batches are dictionaries mapping *qualified* column names
(``table.column``) to equal-length numpy arrays.
"""

from __future__ import annotations

from typing import Dict, Sequence, Tuple

import numpy as np

from ..exceptions import ExecutionError
from ..query.predicates import SelectionPredicate

Batch = Dict[str, np.ndarray]


def qualify(table: str, column: str) -> str:
    return f"{table}.{column}"


def batch_length(batch: Batch) -> int:
    if not batch:
        return 0
    return len(next(iter(batch.values())))


def empty_like(batch: Batch) -> Batch:
    return {name: array[:0] for name, array in batch.items()}


def take(batch: Batch, indices: np.ndarray) -> Batch:
    return {name: array[indices] for name, array in batch.items()}


def concat(batches: Sequence[Batch]) -> Batch:
    non_empty = [b for b in batches if batch_length(b)]
    if not non_empty:
        return {} if not batches else empty_like(batches[0])
    keys = non_empty[0].keys()
    return {key: np.concatenate([b[key] for b in non_empty]) for key in keys}


def selection_mask(batch: Batch, pred: SelectionPredicate) -> np.ndarray:
    """Boolean mask for a selection predicate over a batch."""
    column = batch.get(qualify(pred.table, pred.column))
    if column is None:
        raise ExecutionError(
            f"batch lacks column {pred.table}.{pred.column} for predicate {pred}"
        )
    if pred.op == "=":
        return column == pred.value
    if pred.op == "<":
        return column < pred.value
    if pred.op == "<=":
        return column <= pred.value
    if pred.op == ">":
        return column > pred.value
    if pred.op == ">=":
        return column >= pred.value
    if pred.op == "in":
        return np.isin(column, np.asarray(pred.value))
    raise ExecutionError(f"unsupported operator {pred.op!r}")


def apply_selections(batch: Batch, preds: Sequence[SelectionPredicate]) -> Batch:
    if not preds or not batch_length(batch):
        return batch
    mask = np.ones(batch_length(batch), dtype=bool)
    for pred in preds:
        mask &= selection_mask(batch, pred)
    if mask.all():
        return batch
    return {name: array[mask] for name, array in batch.items()}


def join_indices(
    probe_keys: np.ndarray,
    build_keys_sorted: np.ndarray,
    build_order: np.ndarray,
) -> Tuple[np.ndarray, np.ndarray]:
    """All (probe_idx, build_idx) equi-join matches.

    ``build_keys_sorted`` must be ``build_keys[build_order]``; matching is
    done with two searchsorted passes, so duplicates on both sides are
    handled (many-to-many joins expand correctly).
    """
    lo = np.searchsorted(build_keys_sorted, probe_keys, side="left")
    hi = np.searchsorted(build_keys_sorted, probe_keys, side="right")
    counts = hi - lo
    total = int(counts.sum())
    if total == 0:
        empty = np.empty(0, dtype=np.int64)
        return empty, empty
    probe_idx = np.repeat(np.arange(probe_keys.size), counts)
    # Per-match offsets into each probe key's sorted range, fully vectorized:
    # within a run of matches for one probe key, offsets count 0,1,2,...
    ends = np.cumsum(counts)
    starts = ends - counts
    offsets = np.arange(total) - np.repeat(starts, counts)
    build_pos = np.repeat(lo, counts) + offsets
    return probe_idx, build_order[build_pos]


def merge_batches(left: Batch, left_idx: np.ndarray, right: Batch, right_idx: np.ndarray) -> Batch:
    """Form the joined batch from matched index pairs."""
    out: Batch = {}
    for name, array in left.items():
        out[name] = array[left_idx]
    for name, array in right.items():
        if name in out:
            raise ExecutionError(f"column collision on join output: {name}")
        out[name] = array[right_idx]
    return out
