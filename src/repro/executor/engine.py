"""The execution engine: budget-limited, instrumented, spill-capable.

A Volcano-style batched executor over the in-memory database.  Work is
charged to the :class:`~repro.executor.instrumentation.Instrumentation`
account in the *same units and formulas* as the optimizer's cost model,
so "execute under budget IC_k" is directly meaningful.  An optional
deterministic cost-perturbation models bounded cost-model error δ (§3.4).

Supported executions:

* full — run the plan to completion or until the budget kills it;
* spilled — run the subtree up to the first error-prone node, storing
  its output (§5.3, spill-to-store variant), to learn a selectivity
  cheaply; when the subtree resolves within the budget the run resumes
  the rest of the plan over the stored output, so a spilled execution
  that fits the budget answers the query outright.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from ..catalog.schema import IndexInfo
from ..datagen.database import Database
from ..exceptions import BudgetExceeded, ExecutionCancelled, ExecutionError
from ..obs.tracer import NULL_TRACER, Tracer
from ..optimizer.cost_model import POSTGRES_COST_MODEL, CostModel
from ..optimizer.plans import (
    Aggregate,
    IndexLookup,
    IndexScan,
    Join,
    PlanNode,
    SeqScan,
    first_error_node,
)
from ..query.predicates import JoinPredicate, SelectionPredicate
from ..query.query import Query
from .arrays import (
    Batch,
    apply_selections,
    batch_length,
    concat,
    join_indices,
    merge_batches,
    qualify,
)
from .instrumentation import Instrumentation


class CostPerturbation:
    """Deterministic bounded cost-model error.

    Each node kind/signature gets a fixed multiplicative factor drawn from
    ``[1/(1+δ), 1+δ]``, so estimated and actual costs diverge by at most
    the paper's δ bound — and every run is repeatable.
    """

    def __init__(self, delta: float, seed: int = 0):
        if delta < 0:
            raise ExecutionError("delta must be non-negative")
        self.delta = delta
        self.seed = seed

    def factor(self, node: PlanNode) -> float:
        if self.delta == 0:
            return 1.0
        key = hash((node.signature(), self.seed)) & 0xFFFFFFFF
        unit = key / 0xFFFFFFFF  # deterministic in [0, 1]
        low = 1.0 / (1.0 + self.delta)
        high = 1.0 + self.delta
        return low * (high / low) ** unit


@dataclass
class ExecutionResult:
    """Outcome of one engine execution.

    ``cancelled`` marks a run torn down by a cooperative cancellation
    token (scheduler checkpoint) rather than by its own budget."""

    completed: bool
    rows: int
    spent: float
    instrumentation: Instrumentation
    result: Optional[Batch] = None
    cancelled: bool = False


class ExecutionEngine:
    """Executes physical plans against a :class:`Database`."""

    def __init__(
        self,
        database: Database,
        cost_model: CostModel = POSTGRES_COST_MODEL,
        batch_size: int = 4096,
        perturbation: Optional[CostPerturbation] = None,
        tracer: Optional[Tracer] = None,
    ):
        self.database = database
        self.schema = database.schema
        self.cost_model = cost_model
        self.batch_size = int(batch_size)
        if self.batch_size < 1:
            raise ExecutionError("batch_size must be positive")
        self.perturbation = perturbation
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self._sorted_columns: Dict[Tuple[str, str], Tuple[np.ndarray, np.ndarray]] = {}

    def _trace_run(self, spilled: bool, result: "ExecutionResult") -> None:
        """One event per engine execution — never per batch, so the hot
        operator loops stay tracer-free."""
        tracer = self.tracer
        if not tracer.enabled:
            return
        tracer.event(
            "engine.execute",
            spilled=spilled,
            completed=result.completed,
            cancelled=result.cancelled,
            rows=result.rows,
            spent=result.spent,
            budget=result.instrumentation.budget,
            tuples_moved=result.instrumentation.total_tuples,
        )
        tracer.count("engine.executions")
        tracer.count("engine.tuples_moved", result.instrumentation.total_tuples)
        if result.cancelled:
            tracer.count("engine.cancellations")
        elif not result.completed:
            tracer.count("engine.budget_exhaustions")

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------

    def execute(
        self,
        query: Query,
        plan: PlanNode,
        budget: Optional[float] = None,
        collect: bool = False,
        cancel: Optional[object] = None,
    ) -> ExecutionResult:
        """Run ``plan`` fully (or until ``budget`` or ``cancel`` kills it)."""
        inst = Instrumentation(budget, cancel=cancel)
        inst.needed_columns = needed_columns(query)
        rows = 0
        collected: List[Batch] = []
        try:
            for batch in self._run(plan, query, inst):
                rows += batch_length(batch)
                if collect:
                    collected.append(batch)
        except (BudgetExceeded, ExecutionCancelled) as exc:
            outcome = ExecutionResult(
                completed=False,
                rows=rows,
                spent=inst.total_cost,
                instrumentation=inst,
                cancelled=isinstance(exc, ExecutionCancelled),
            )
            self._trace_run(False, outcome)
            return outcome
        result = concat(collected) if collect and collected else None
        outcome = ExecutionResult(
            completed=True,
            rows=rows,
            spent=inst.total_cost,
            instrumentation=inst,
            result=result,
        )
        self._trace_run(False, outcome)
        return outcome

    def execute_spilled(
        self,
        query: Query,
        plan: PlanNode,
        spill_pids,
        budget: Optional[float] = None,
        cancel: Optional[object] = None,
    ) -> Tuple[ExecutionResult, Optional[PlanNode]]:
        """Spill-mode run: execute up to the first node evaluating one of
        ``spill_pids``, storing its output.  If the spill node resolves
        within the budget, execution resumes the full plan over the
        stored output — ``completed`` on the returned result means the
        *query* was answered; whether the spill node itself finished
        (exact learning) is read off ``instrumentation.finished(node)``.
        Returns the result and the spill node (None when the plan carries
        no such node — the run then degenerates to a full execution)."""
        node = first_error_node(plan, frozenset(spill_pids))
        target = node if node is not None else plan
        inst = Instrumentation(budget, cancel=cancel)
        inst.needed_columns = needed_columns(query)
        rows = 0
        stored: List[Batch] = []
        try:
            for batch in self._run(target, query, inst):
                rows += batch_length(batch)
                if node is not None:
                    stored.append(batch)
        except (BudgetExceeded, ExecutionCancelled) as exc:
            outcome = ExecutionResult(
                completed=False,
                rows=rows,
                spent=inst.total_cost,
                instrumentation=inst,
                cancelled=isinstance(exc, ExecutionCancelled),
            )
            self._trace_run(True, outcome)
            return outcome, node
        if node is None:
            outcome = ExecutionResult(
                completed=True, rows=rows, spent=inst.total_cost, instrumentation=inst
            )
            self._trace_run(True, outcome)
            return outcome, node
        # Spill-to-store resume: the subtree resolved under budget; run
        # the rest of the plan, replaying the stored output (already
        # charged and counted) when execution reaches the spill node.
        inst.replay = (node, stored)
        rows = 0
        try:
            for batch in self._run(plan, query, inst):
                rows += batch_length(batch)
        except (BudgetExceeded, ExecutionCancelled) as exc:
            outcome = ExecutionResult(
                completed=False,
                rows=rows,
                spent=inst.total_cost,
                instrumentation=inst,
                cancelled=isinstance(exc, ExecutionCancelled),
            )
            self._trace_run(True, outcome)
            return outcome, node
        outcome = ExecutionResult(
            completed=True, rows=rows, spent=inst.total_cost, instrumentation=inst
        )
        self._trace_run(True, outcome)
        return outcome, node

    # ------------------------------------------------------------------
    # Cost charging
    # ------------------------------------------------------------------

    def _charge(self, inst: Instrumentation, node: PlanNode, cost: float):
        if self.perturbation is not None:
            cost *= self.perturbation.factor(node)
        inst.charge(node, cost)

    # ------------------------------------------------------------------
    # Operator dispatch
    # ------------------------------------------------------------------

    def _run(self, node: PlanNode, query: Query, inst: Instrumentation) -> Iterator[Batch]:
        if inst.replay is not None and node is inst.replay[0]:
            # Resumed spill execution: the node's output was stored by
            # the spill pass (its work is already charged and counted).
            return iter(inst.replay[1])
        if isinstance(node, SeqScan):
            return self._run_seq_scan(node, query, inst)
        if isinstance(node, IndexScan):
            return self._run_index_scan(node, query, inst)
        if isinstance(node, Join):
            return self._run_join(node, query, inst)
        if isinstance(node, Aggregate):
            return self._run_aggregate(node, query, inst)
        raise ExecutionError(f"cannot execute node {node.signature()}")

    # -- scans -----------------------------------------------------------

    def _table_batch(
        self, table: str, start: int, stop: int, inst: Instrumentation
    ) -> Batch:
        data = self.database.table(table)
        needed = getattr(inst, "needed_columns", None)
        return {
            qualify(table, column): array[start:stop]
            for column, array in data.items()
            if needed is None or qualify(table, column) in needed
        }

    def _run_seq_scan(self, node: SeqScan, query: Query, inst: Instrumentation):
        table = self.schema.table(node.table)
        model = self.cost_model
        preds = [self._selection(query, pid) for pid in node.filter_pids]
        n = table.row_count
        pages_per_row = table.pages / n
        for start in range(0, n, self.batch_size):
            stop = min(start + self.batch_size, n)
            count = stop - start
            cost = count * pages_per_row * model.seq_page_cost
            cost += count * model.cpu_tuple_cost
            cost += count * len(preds) * model.cpu_operator_cost
            self._charge(inst, node, cost)
            batch = apply_selections(self._table_batch(node.table, start, stop, inst), preds)
            out = batch_length(batch)
            if out:
                inst.emit(node, out)
                yield batch
        inst.mark_finished(node)

    def _sorted_column(self, table: str, column: str) -> Tuple[np.ndarray, np.ndarray]:
        """(sorted values, argsort order) for a simulated B-tree index."""
        key = (table, column)
        cached = self._sorted_columns.get(key)
        if cached is None:
            values = self.database.column(table, column)
            order = np.argsort(values, kind="stable")
            cached = (values[order], order)
            self._sorted_columns[key] = cached
        return cached

    def _matching_positions(
        self, sorted_values: np.ndarray, pred: SelectionPredicate
    ) -> Tuple[int, int]:
        """Index range [lo, hi) of entries satisfying a range/eq predicate."""
        if pred.op == "=":
            lo = int(np.searchsorted(sorted_values, pred.value, side="left"))
            hi = int(np.searchsorted(sorted_values, pred.value, side="right"))
        elif pred.op in ("<", "<="):
            side = "left" if pred.op == "<" else "right"
            lo, hi = 0, int(np.searchsorted(sorted_values, pred.value, side=side))
        else:  # > or >=
            side = "right" if pred.op == ">" else "left"
            lo, hi = int(np.searchsorted(sorted_values, pred.value, side=side)), sorted_values.size
        return lo, hi

    def _run_index_scan(self, node: IndexScan, query: Query, inst: Instrumentation):
        table = self.schema.table(node.table)
        model = self.cost_model
        index_pred = self._selection(query, node.index_pid)
        residuals = [self._selection(query, pid) for pid in node.filter_pids]
        sorted_values, order = self._sorted_column(node.table, index_pred.column)
        index = IndexInfo.for_table(table, index_pred.column)
        self._charge(inst, node, index.height * model.random_page_cost)
        lo, hi = self._matching_positions(sorted_values, index_pred)
        matched = hi - lo
        leaf_share = (matched / max(1, table.row_count)) * index.leaf_pages
        self._charge(inst, node, leaf_share * model.seq_page_cost)
        row_ids = order[lo:hi]
        per_row = (
            model.cpu_index_tuple_cost
            + model.random_page_cost
            + model.cpu_tuple_cost
            + len(residuals) * model.cpu_operator_cost
        )
        data = self.database.table(node.table)
        needed = getattr(inst, "needed_columns", None)
        for start in range(0, matched, self.batch_size):
            ids = row_ids[start : min(start + self.batch_size, matched)]
            self._charge(inst, node, ids.size * per_row)
            batch = {
                qualify(node.table, column): array[ids]
                for column, array in data.items()
                if needed is None or qualify(node.table, column) in needed
            }
            batch = apply_selections(batch, residuals)
            out = batch_length(batch)
            if out:
                inst.emit(node, out)
                yield batch
        inst.mark_finished(node)

    # -- joins -----------------------------------------------------------

    def _run_join(self, node: Join, query: Query, inst: Instrumentation):
        if node.algo == "inl":
            yield from self._run_inl_join(node, query, inst)
        elif node.algo == "hash":
            yield from self._run_hash_like_join(node, query, inst, flavour="hash")
        elif node.algo == "merge":
            yield from self._run_hash_like_join(node, query, inst, flavour="merge")
        elif node.algo == "nl":
            yield from self._run_nl_join(node, query, inst)
        else:  # pragma: no cover
            raise ExecutionError(f"unknown join algorithm {node.algo!r}")
        inst.mark_finished(node)

    def _join_columns(self, query: Query, node: Join) -> Tuple[JoinPredicate, List[JoinPredicate]]:
        """The driving join predicate and any extra composite predicates."""
        preds = [query.predicate(pid) for pid in node.join_pids]
        for pred in preds:
            if not isinstance(pred, JoinPredicate):
                raise ExecutionError(f"join pid {pred.pid} is not a join predicate")
        return preds[0], preds[1:]

    def _sides(self, node: Join, pred: JoinPredicate) -> Tuple[str, str]:
        """Qualified key column names on (left child, right child)."""
        left_tables = node.left.tables()
        if pred.left_table in left_tables:
            return (
                qualify(pred.left_table, pred.left_column),
                qualify(pred.right_table, pred.right_column),
            )
        return (
            qualify(pred.right_table, pred.right_column),
            qualify(pred.left_table, pred.left_column),
        )

    def _composite_filter(
        self, batch: Batch, extras: Sequence[JoinPredicate], node: Join, inst: Instrumentation
    ) -> Batch:
        """Apply the remaining equi-join predicates of a composite join."""
        if not extras or not batch_length(batch):
            return batch
        model = self.cost_model
        mask = np.ones(batch_length(batch), dtype=bool)
        self._charge(inst, node, batch_length(batch) * len(extras) * model.cpu_operator_cost)
        for pred in extras:
            left = batch[qualify(pred.left_table, pred.left_column)]
            right = batch[qualify(pred.right_table, pred.right_column)]
            mask &= left == right
        if mask.all():
            return batch
        return {name: array[mask] for name, array in batch.items()}

    def _materialize(self, child: PlanNode, query: Query, inst: Instrumentation) -> Batch:
        return concat(list(self._run(child, query, inst)))

    def _run_hash_like_join(self, node: Join, query: Query, inst: Instrumentation, flavour: str):
        model = self.cost_model
        driving, extras = self._join_columns(query, node)
        left_key, right_key = self._sides(node, driving)
        build = self._materialize(node.right, query, inst)
        build_rows = batch_length(build)
        if flavour == "hash":
            self._charge(inst, node, build_rows * model.hash_tuple_cost)
        else:  # merge: sort the build side now; probe side sorted as it streams
            self._charge(
                inst,
                node,
                _sort_charge(build_rows, model) + build_rows * model.cpu_operator_cost,
            )
        probe_seen = 0
        if build_rows:
            build_keys = build[right_key]
            build_order = np.argsort(build_keys, kind="stable")
            build_sorted = build_keys[build_order]
        else:
            build_order = np.empty(0, dtype=np.int64)
            build_sorted = np.empty(0)
        for probe in self._run(node.left, query, inst):
            probe_rows = batch_length(probe)
            if flavour == "hash":
                self._charge(inst, node, probe_rows * model.hash_tuple_cost)
            else:
                # Marginal sort cost so the per-batch charges telescope to
                # the cost model's N·log(N) for the full probe input.
                marginal = _sort_charge(probe_seen + probe_rows, model) - _sort_charge(
                    probe_seen, model
                )
                probe_seen += probe_rows
                self._charge(
                    inst, node, marginal + probe_rows * model.cpu_operator_cost
                )
            if not build_rows:
                continue
            probe_idx, build_idx = join_indices(probe[left_key], build_sorted, build_order)
            out = merge_batches(probe, probe_idx, build, build_idx)
            out = self._composite_filter(out, extras, node, inst)
            count = batch_length(out)
            self._charge(inst, node, count * model.cpu_tuple_cost)
            if count:
                inst.emit(node, count)
                yield out

    def _run_nl_join(self, node: Join, query: Query, inst: Instrumentation):
        model = self.cost_model
        driving, extras = self._join_columns(query, node)
        left_key, right_key = self._sides(node, driving)
        inner = self._materialize(node.right, query, inst)
        inner_rows = batch_length(inner)
        self._charge(inst, node, inner_rows * model.cpu_tuple_cost)  # materialize
        if inner_rows:
            inner_keys = inner[right_key]
            inner_order = np.argsort(inner_keys, kind="stable")
            inner_sorted = inner_keys[inner_order]
        for outer in self._run(node.left, query, inst):
            outer_rows = batch_length(outer)
            # The nested-loop comparisons are charged faithfully even though
            # the matching itself is computed with sorted lookups.
            self._charge(inst, node, outer_rows * inner_rows * model.cpu_operator_cost)
            if not inner_rows:
                continue
            outer_idx, inner_idx = join_indices(outer[left_key], inner_sorted, inner_order)
            out = merge_batches(outer, outer_idx, inner, inner_idx)
            out = self._composite_filter(out, extras, node, inst)
            count = batch_length(out)
            self._charge(inst, node, count * model.cpu_tuple_cost)
            if count:
                inst.emit(node, count)
                yield out

    def _run_inl_join(self, node: Join, query: Query, inst: Instrumentation):
        model = self.cost_model
        driving, extras = self._join_columns(query, node)
        inner: IndexLookup = node.right  # type: ignore[assignment]
        outer_key = qualify(driving.other(inner.table), driving.column_for(driving.other(inner.table)))
        residuals = [self._selection(query, pid) for pid in inner.filter_pids]
        sorted_values, order = self._sorted_column(inner.table, inner.lookup_column)
        data = self.database.table(inner.table)
        per_match = (
            model.cpu_index_tuple_cost
            + model.random_page_cost
            + model.cpu_tuple_cost
            + len(residuals) * model.cpu_operator_cost
        )
        for outer in self._run(node.left, query, inst):
            outer_rows = batch_length(outer)
            self._charge(inst, node, outer_rows * model.random_page_cost)  # descents
            outer_idx, inner_idx = join_indices(outer[outer_key], sorted_values, order)
            self._charge(inst, node, inner_idx.size * per_match)
            needed = getattr(inst, "needed_columns", None)
            inner_batch = {
                qualify(inner.table, column): array[inner_idx]
                for column, array in data.items()
                if needed is None or qualify(inner.table, column) in needed
            }
            out = merge_batches(outer, outer_idx, inner_batch, np.arange(inner_idx.size))
            out = apply_selections(out, residuals)
            out = self._composite_filter(out, extras, node, inst)
            count = batch_length(out)
            self._charge(inst, node, count * model.cpu_tuple_cost)
            if count:
                inst.emit(node, count)
                yield out

    # -- aggregation ------------------------------------------------------

    def _run_aggregate(self, node: Aggregate, query: Query, inst: Instrumentation):
        """Hash aggregation: COUNT(*) per group (or one global count)."""
        model = self.cost_model
        rows_in = 0
        if not node.group_columns:
            count = 0
            for batch in self._run(node.child, query, inst):
                n = batch_length(batch)
                rows_in += n
                count += n
                self._charge(inst, node, n * model.hash_tuple_cost)
            self._charge(inst, node, model.cpu_tuple_cost)
            inst.emit(node, 1)
            inst.mark_finished(node)
            yield {"count": np.array([count], dtype=np.int64)}
            return
        key_names = [qualify(t, c) for t, c in node.group_columns]
        keys: Dict[Tuple, int] = {}
        for batch in self._run(node.child, query, inst):
            n = batch_length(batch)
            rows_in += n
            self._charge(
                inst,
                node,
                n * (model.hash_tuple_cost + len(key_names) * model.cpu_operator_cost),
            )
            if not n:
                continue
            stacked = np.stack([batch[name] for name in key_names], axis=1)
            uniques, counts = np.unique(stacked, axis=0, return_counts=True)
            for row, cnt in zip(uniques, counts):
                keys[tuple(row.tolist())] = keys.get(tuple(row.tolist()), 0) + int(cnt)
        groups = sorted(keys)
        self._charge(inst, node, len(groups) * model.cpu_tuple_cost)
        inst.emit(node, len(groups))
        inst.mark_finished(node)
        if not groups:
            return
        out: Batch = {}
        columns = np.array(groups)
        for i, name in enumerate(key_names):
            out[name] = columns[:, i]
        out["count"] = np.array([keys[g] for g in groups], dtype=np.int64)
        yield out

    # ------------------------------------------------------------------

    @staticmethod
    def _selection(query: Query, pid: str) -> SelectionPredicate:
        pred = query.predicate(pid)
        if not isinstance(pred, SelectionPredicate):
            raise ExecutionError(f"pid {pid!r} is not a selection predicate")
        return pred


def _sort_charge(rows: int, model: CostModel) -> float:
    return model.sort_cpu_factor * rows * math.log2(rows + 2.0)


def needed_columns(query: Query):
    """Qualified columns the execution of ``query`` actually touches.

    Join keys, predicate columns, and group-by columns; batches are
    pruned to this set at the scan/fetch boundary (projection pushdown).
    For plain ``SELECT *`` queries all columns are needed.
    """
    if not query.aggregate:
        return None  # SELECT *: every column is part of the result
    needed = set()
    for sel in query.selections:
        needed.add(qualify(sel.table, sel.column))
    for join in query.joins:
        needed.add(qualify(join.left_table, join.left_column))
        needed.add(qualify(join.right_table, join.right_column))
    for table, column in query.group_by:
        needed.add(qualify(table, column))
    return needed
