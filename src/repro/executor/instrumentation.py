"""Per-node execution instrumentation.

Mirrors PostgreSQL's ``Instrumentation`` structure (paper §5.4): every
plan node gets a tuple counter and a cost account, which is what makes
cost-limited execution and run-time selectivity monitoring possible.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from ..exceptions import BudgetExceeded, ExecutionCancelled
from ..optimizer.plans import PlanNode


@dataclass
class NodeCounters:
    """Counters for one plan node."""

    tuples_out: int = 0
    cost: float = 0.0
    finished: bool = False


class Instrumentation:
    """Cost accounting + tuple counters for one plan execution.

    ``charge`` enforces the execution budget: the total spent can never
    exceed the budget — when an increment would cross it, the increment is
    clipped to the budget boundary and :class:`BudgetExceeded` is raised,
    modelling an executor killed exactly at its cost horizon.

    ``charge`` is also the scheduler's budget checkpoint: when a
    cooperative ``cancel`` token (any object with
    ``should_stop(spent) -> bool``, e.g.
    :class:`repro.sched.CancellationToken`) reports a stop, the run is
    torn down with :class:`ExecutionCancelled` — per cost charge, so a
    cancelled straggler overshoots the winner's cost-time by at most one
    batch's worth of work.
    """

    def __init__(
        self, budget: Optional[float] = None, cancel: Optional[object] = None
    ):
        self.budget = budget
        self.cancel = cancel
        self.total_cost = 0.0
        #: Optional projection-pushdown set: qualified column names the
        #: run needs; ``None`` means all columns (SELECT *).
        self.needed_columns = None
        #: Optional ``(node, batches)`` spill-store replay: when a
        #: resumed spill execution reaches ``node``, its stored output is
        #: yielded instead of re-running the (already charged) subtree.
        self.replay = None
        self._counters: Dict[int, NodeCounters] = {}
        self._nodes: Dict[int, PlanNode] = {}

    def counters(self, node: PlanNode) -> NodeCounters:
        key = id(node)
        entry = self._counters.get(key)
        if entry is None:
            entry = NodeCounters()
            self._counters[key] = entry
            self._nodes[key] = node
        return entry

    def charge(self, node: PlanNode, cost: float):
        """Charge ``cost`` units to ``node``, enforcing the budget."""
        if cost < 0:
            raise ValueError("cannot charge negative cost")
        if self.budget is not None and self.total_cost + cost > self.budget:
            allowed = max(0.0, self.budget - self.total_cost)
            self.counters(node).cost += allowed
            self.total_cost = self.budget
            raise BudgetExceeded(
                f"budget {self.budget:.4g} exhausted at node {node.signature()}",
                spent=self.total_cost,
                instrumentation=self,
            )
        self.counters(node).cost += cost
        self.total_cost += cost
        if self.cancel is not None and self.cancel.should_stop(self.total_cost):
            raise ExecutionCancelled(
                f"execution cancelled at node {node.signature()}",
                spent=self.total_cost,
            )

    def emit(self, node: PlanNode, tuples: int):
        """Record ``tuples`` output rows at ``node``."""
        self.counters(node).tuples_out += int(tuples)

    def mark_finished(self, node: PlanNode):
        self.counters(node).finished = True

    def tuples_out(self, node: PlanNode) -> int:
        return self.counters(node).tuples_out

    @property
    def total_tuples(self) -> int:
        """Tuples moved across all plan nodes (telemetry account)."""
        return sum(c.tuples_out for c in self._counters.values())

    def finished(self, node: PlanNode) -> bool:
        key = id(node)
        return key in self._counters and self._counters[key].finished

    def report(self) -> str:
        lines = [f"total cost: {self.total_cost:.4g}"]
        for key, counters in self._counters.items():
            node = self._nodes[key]
            lines.append(
                f"  {node.signature()}: out={counters.tuples_out} "
                f"cost={counters.cost:.4g} finished={counters.finished}"
            )
        return "\n".join(lines)
