"""Instrumented, budget-limited, spill-capable execution engine."""

from .arrays import Batch, apply_selections, join_indices, merge_batches, qualify
from .engine import CostPerturbation, ExecutionEngine, ExecutionResult
from .instrumentation import Instrumentation, NodeCounters
from .service import RealExecutionService

__all__ = [
    "Batch",
    "apply_selections",
    "join_indices",
    "merge_batches",
    "qualify",
    "CostPerturbation",
    "ExecutionEngine",
    "ExecutionResult",
    "Instrumentation",
    "NodeCounters",
    "RealExecutionService",
]
