"""Exception hierarchy for the plan-bouquet reproduction library."""


class ReproError(Exception):
    """Base class for all library-specific errors."""


class CatalogError(ReproError):
    """Raised for schema/catalog inconsistencies (unknown table, column...)."""


class QueryError(ReproError):
    """Raised for malformed queries (disconnected join graph, bad predicate)."""


class OptimizerError(ReproError):
    """Raised when the optimizer cannot produce a plan."""


class ExecutionError(ReproError):
    """Raised for run-time execution failures."""


class BudgetExceeded(ExecutionError):
    """Raised by the executor when a cost-limited execution hits its budget.

    Carries the instrumentation snapshot so the caller can harvest the
    partial-execution knowledge (tuple counters, spent cost).
    """

    def __init__(self, message, spent=None, instrumentation=None):
        super().__init__(message)
        self.spent = spent
        self.instrumentation = instrumentation


class ExecutionCancelled(ExecutionError):
    """Raised inside a cost-limited execution when its cooperative
    cancellation token fires (another contour plan already completed).

    Distinct from :class:`BudgetExceeded`: a cancelled run was killed by
    the scheduler, not by its own budget, so the bouquet driver must not
    conclude anything about the plan's true cost from it.
    """

    def __init__(self, message, spent=None):
        super().__init__(message)
        self.spent = spent


class EssError(ReproError):
    """Raised for error-selectivity-space construction problems."""


class BouquetError(ReproError):
    """Raised when bouquet identification or execution cannot proceed."""


class TemplateError(ReproError):
    """Raised when a compiled bouquet cannot be rebound from a cached
    template onto a new query instance (dimension/grid mismatch, renamed
    relations that are not statistically interchangeable, or re-costed
    contours diverging beyond tolerance).  Callers treat it as "fall
    back to a full compile" and record the carried ``reason``."""

    def __init__(self, message, reason="rebind-failed"):
        super().__init__(message)
        self.reason = reason


class DriftError(ReproError):
    """Raised when a statistics delta makes an artifact un-patchable (the
    drift changed the error dimensions, the grid shape, or more than the
    delta-refresh engine can reconcile) — callers fall back to a full
    recompile or invalidation."""
