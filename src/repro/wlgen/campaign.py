"""MSO fuzzing campaigns: hundreds of random queries through the pipeline.

The campaign is the repo's adversarial validation loop for the paper's
central theorem: for *every* query the bouquet's measured MSO must stay
within the guaranteed bound ``rho * (1 + lambda) * r^2 / (r - 1)``
(= ``4 * (1 + lambda) * rho`` at r=2, §3.2/§5.1).  Hand-picked workloads
can only ever exercise ten plan diagrams; the fuzzer samples the query
space itself — random join trees, random predicate mixes, per-query
sensitivity-chosen ESS axes — and checks the bound at every grid point
of every query.

Per-query pipeline::

    generate -> ground-truth base -> sensitivity dimensioning
             -> compile_bouquet -> sweep-engine optimized field
             -> MSO/ASO vs. 4(1+lambda)rho

Campaigns shard across processes exactly like parallel POSP generation
(:func:`repro.ess.diagram._parallel_optimize`): fork-preferred pool, an
explicit spawn fallback with a pre-flight pickle check, results streamed
with ``imap``.  Workers rebuild the (deterministic) environment from the
campaign config rather than inheriting live objects, so shard results
are independent of worker count and the report is bit-identical across
re-runs — wall-clock timings deliberately never enter the payload.
"""

from __future__ import annotations

import traceback
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Tuple

import numpy as np

from ..exceptions import ReproError
from ..obs.tracer import NULL_TRACER, Tracer
from .generator import GeneratedQuery, GeneratorConfig, QueryGenerator

__all__ = [
    "CampaignConfig",
    "CampaignEnv",
    "CampaignReport",
    "QueryOutcome",
    "build_env",
    "run_campaign",
    "run_query",
]

#: Campaign grid resolutions by ESS dimensionality — coarser than the
#: interactive defaults; the bound must hold at *every* resolution, so a
#: coarse grid trades per-query depth for query-space breadth.
CAMPAIGN_RESOLUTIONS: Dict[int, int] = {1: 16, 2: 8, 3: 5, 4: 4, 5: 3}

#: Relative slack on the bound check, covering float accumulation in the
#: sweep engine — NOT a semantic tolerance; genuine violations exceed
#: the bound by integer factors, not parts per million.
BOUND_RTOL = 1e-6


class CampaignError(ReproError):
    """The campaign was misconfigured."""


@dataclass(frozen=True)
class CampaignConfig:
    """Everything needed to replay a campaign bit-for-bit.

    The triple ``(benchmark, scale, data_seed)`` pins the database,
    ``(stats_sample, stats_seed)`` the statistics, ``(seed, count,
    generator)`` the query stream, and the remaining knobs the compile
    pipeline — so the config *is* the campaign's identity, and the
    report embeds it verbatim for exact replay.
    """

    benchmark: str = "tpch"
    scale: float = 0.003
    data_seed: int = 7
    stats_sample: int = 1500
    stats_seed: int = 3
    seed: int = 42
    count: int = 200
    generator: GeneratorConfig = field(default_factory=GeneratorConfig)
    max_dims: int = 3
    min_penalty: float = 1.05
    sensitivity_resolution: int = 4
    ratio: float = 2.0
    lambda_: float = 0.2
    workers: int = 1

    def __post_init__(self):
        if self.benchmark not in ("tpch", "tpcds"):
            raise CampaignError(
                f"campaign: unknown benchmark {self.benchmark!r} "
                "(expected 'tpch' or 'tpcds')"
            )
        if self.count < 1:
            raise CampaignError("campaign: count must be >= 1")
        if self.workers < 1:
            raise CampaignError("campaign: workers must be >= 1")
        if self.max_dims < 1:
            raise CampaignError("campaign: max_dims must be >= 1")

    def to_dict(self) -> Dict[str, object]:
        return {
            "benchmark": self.benchmark,
            "scale": self.scale,
            "data_seed": self.data_seed,
            "stats_sample": self.stats_sample,
            "stats_seed": self.stats_seed,
            "seed": self.seed,
            "count": self.count,
            "generator": self.generator.to_dict(),
            "max_dims": self.max_dims,
            "min_penalty": self.min_penalty,
            "sensitivity_resolution": self.sensitivity_resolution,
            "ratio": self.ratio,
            "lambda_": self.lambda_,
            "workers": self.workers,
        }

    @staticmethod
    def from_dict(data: Mapping[str, object]) -> "CampaignConfig":
        payload = dict(data)
        gen = payload.get("generator")
        if isinstance(gen, Mapping):
            payload["generator"] = GeneratorConfig.from_dict(gen)
        return CampaignConfig(**payload)


@dataclass
class CampaignEnv:
    """The deterministic world a campaign (or one of its shards) runs in."""

    catalog: "object"  # repro.api.Catalog — typed loosely to avoid the cycle
    optimizer: "object"
    generator: QueryGenerator


def build_env(config: CampaignConfig, tracer: Optional[Tracer] = None) -> CampaignEnv:
    """Rebuild the campaign environment from its config, deterministically.

    Every shard calls this with the same config and lands in the same
    world — database generation, statistics sampling, and the query
    stream are all seed-pinned.
    """
    from ..api import Catalog
    from ..catalog.tpcds import tpcds_generator_spec, tpcds_schema
    from ..catalog.tpch import tpch_generator_spec, tpch_schema
    from ..datagen.database import Database
    from ..optimizer.optimizer import Optimizer

    if config.benchmark == "tpcds":
        schema = tpcds_schema(config.scale)
        spec = tpcds_generator_spec(config.scale)
    else:
        schema = tpch_schema(config.scale)
        spec = tpch_generator_spec(config.scale)
    database = Database.generate(schema, spec, seed=config.data_seed)
    statistics = database.build_statistics(
        sample_size=config.stats_sample, seed=config.stats_seed
    )
    optimizer = Optimizer(schema, statistics)
    if tracer is not None:
        optimizer.tracer = tracer
    generator = QueryGenerator(schema, database, config.generator)
    return CampaignEnv(
        catalog=Catalog(schema=schema, statistics=statistics, database=database),
        optimizer=optimizer,
        generator=generator,
    )


@dataclass
class QueryOutcome:
    """One fuzzed query's verdict: ok, bound violation, or crash."""

    index: int
    name: str
    status: str  # "ok" | "violation" | "crash"
    sql: str = ""
    geometry: str = ""
    dimensions: List[str] = field(default_factory=list)
    num_plans: int = 0
    mso: Optional[float] = None
    aso: Optional[float] = None
    bound: Optional[float] = None
    rho: Optional[int] = None
    error: Optional[str] = None

    @property
    def ok(self) -> bool:
        return self.status == "ok"

    def to_dict(self) -> Dict[str, object]:
        return {
            "index": self.index,
            "name": self.name,
            "status": self.status,
            "sql": self.sql,
            "geometry": self.geometry,
            "dimensions": list(self.dimensions),
            "num_plans": self.num_plans,
            "mso": self.mso,
            "aso": self.aso,
            "bound": self.bound,
            "rho": self.rho,
            "error": self.error,
        }


def run_query(env: CampaignEnv, config: CampaignConfig, index: int) -> QueryOutcome:
    """Fuzz one query end-to-end; never raises — crashes become outcomes."""
    generated: Optional[GeneratedQuery] = None
    try:
        generated = env.generator.generate(config.seed, index)
        return _fuzz_generated(env, config, generated)
    except Exception:
        return QueryOutcome(
            index=index,
            name=generated.name if generated is not None else f"W{config.seed}_{index}",
            status="crash",
            sql=generated.sql if generated is not None else "",
            geometry=generated.geometry if generated is not None else "",
            error=traceback.format_exc(),
        )


def _fuzz_generated(
    env: CampaignEnv, config: CampaignConfig, generated: GeneratedQuery
) -> QueryOutcome:
    from ..api import BouquetConfig, compile_bouquet
    from ..robustness.metrics import bouquet_aso, bouquet_mso, optimized_field
    from .dimensioning import dimension_query

    query = generated.query
    result = dimension_query(
        env.optimizer,
        query,
        env.catalog.database,
        max_dims=config.max_dims,
        min_penalty=config.min_penalty,
        resolution=config.sensitivity_resolution,
    )
    resolution = CAMPAIGN_RESOLUTIONS.get(len(result.dimensions), 3)
    compiled = compile_bouquet(
        query,
        env.catalog,
        config=BouquetConfig(
            ratio=config.ratio, lambda_=config.lambda_, resolution=resolution
        ),
        dimensions=result.dimensions,
        base_assignment=result.base_assignment,
        optimizer=env.optimizer,
    )
    bouquet = compiled.bouquet
    fld = optimized_field(bouquet)
    pic = bouquet.diagram.costs
    mso = bouquet_mso(fld, pic)
    aso = bouquet_aso(fld, pic)
    bound = bouquet.mso_bound
    status = "ok" if mso <= bound * (1.0 + BOUND_RTOL) else "violation"
    return QueryOutcome(
        index=generated.index,
        name=generated.name,
        status=status,
        sql=generated.sql,
        geometry=generated.geometry,
        dimensions=result.pids,
        num_plans=bouquet.cardinality,
        mso=float(mso),
        aso=float(aso),
        bound=float(bound),
        rho=int(bouquet.rho),
        error=None,
    )


# ---------------------------------------------------------------------------
# Campaign report
# ---------------------------------------------------------------------------


def _percentile(values: List[float], q: float) -> Optional[float]:
    if not values:
        return None
    return float(np.percentile(np.asarray(values, dtype=float), q))


@dataclass
class CampaignReport:
    """Aggregate verdict of one campaign: distributions + failure roster."""

    config: CampaignConfig
    outcomes: List[QueryOutcome]

    @property
    def ok(self) -> bool:
        return all(outcome.ok for outcome in self.outcomes)

    @property
    def crashes(self) -> List[QueryOutcome]:
        return [o for o in self.outcomes if o.status == "crash"]

    @property
    def violations(self) -> List[QueryOutcome]:
        return [o for o in self.outcomes if o.status == "violation"]

    def _msos(self) -> List[float]:
        return [o.mso for o in self.outcomes if o.mso is not None]

    def _asos(self) -> List[float]:
        return [o.aso for o in self.outcomes if o.aso is not None]

    def summary(self) -> Dict[str, object]:
        msos, asos = self._msos(), self._asos()
        margins = [
            o.mso / o.bound
            for o in self.outcomes
            if o.mso is not None and o.bound
        ]
        geometries: Dict[str, int] = {}
        for outcome in self.outcomes:
            if outcome.geometry:
                key = outcome.geometry.split("(")[0]
                geometries[key] = geometries.get(key, 0) + 1
        return {
            "queries": len(self.outcomes),
            "ok": sum(1 for o in self.outcomes if o.ok),
            "violations": len(self.violations),
            "crashes": len(self.crashes),
            "mso_max": max(msos) if msos else None,
            "mso_p95": _percentile(msos, 95),
            "mso_median": _percentile(msos, 50),
            "aso_mean": float(np.mean(asos)) if asos else None,
            "worst_bound_margin": max(margins) if margins else None,
            "geometries": dict(sorted(geometries.items())),
        }

    def to_dict(self) -> Dict[str, object]:
        """The BENCH_workload.json payload — deterministic by design.

        Contains no wall-clock data; outcomes are sorted by query index
        regardless of shard completion order, so the same config yields
        a byte-identical JSON document on every run.
        """
        return {
            "bench": "workload",
            "config": self.config.to_dict(),
            "summary": self.summary(),
            "failures": [
                o.to_dict()
                for o in sorted(
                    self.outcomes, key=lambda o: o.index
                )
                if not o.ok
            ],
            "results": [
                o.to_dict() for o in sorted(self.outcomes, key=lambda o: o.index)
            ],
        }

    def describe(self) -> str:
        s = self.summary()
        lines = [
            f"workload fuzzing campaign: {self.config.benchmark} "
            f"seed={self.config.seed} count={self.config.count}",
            f"  ok={s['ok']}/{s['queries']}  "
            f"violations={s['violations']}  crashes={s['crashes']}",
        ]
        if s["mso_max"] is not None:
            lines.append(
                f"  MSO median={s['mso_median']:.3f} p95={s['mso_p95']:.3f} "
                f"max={s['mso_max']:.3f}  ASO mean={s['aso_mean']:.3f}"
            )
            lines.append(
                f"  worst bound margin (MSO / 4(1+lambda)rho) = "
                f"{s['worst_bound_margin']:.4f}"
            )
        lines.append(
            "  geometries: "
            + ", ".join(f"{k}={v}" for k, v in s["geometries"].items())
        )
        for outcome in (self.violations + self.crashes)[:5]:
            first = (outcome.error or "").strip().splitlines()
            detail = first[-1] if first else f"mso={outcome.mso} bound={outcome.bound}"
            lines.append(f"  FAIL {outcome.name} [{outcome.status}]: {detail}")
        return "\n".join(lines)


# ---------------------------------------------------------------------------
# Sharded execution
# ---------------------------------------------------------------------------


def _run_chunk(ctx, config: CampaignConfig, indices: List[int]) -> List[QueryOutcome]:
    # repro.par task: the payload is the (tiny) campaign config; the
    # deterministic environment is rebuilt once per worker per config
    # digest via the worker-side memo and reused across chunks *and*
    # across campaign calls — the big win for windowed campaigns.
    # Workers never trace (build_env pins the null tracer).
    env = ctx.memo("env", lambda: build_env(config, tracer=NULL_TRACER))
    return [run_query(env, config, index) for index in indices]


def run_campaign(
    config: CampaignConfig,
    tracer: Optional[Tracer] = None,
    progress=None,
    pool=None,
) -> CampaignReport:
    """Run the full campaign, sharded across ``config.workers`` processes.

    ``progress`` (optional) is called with each completed
    :class:`QueryOutcome` as shards stream in — index order within a
    shard, shards interleaved.  The report itself is order-normalized.
    ``pool`` (optional) supplies an explicit :class:`repro.par.WorkerPool`
    (the perf bench uses this to race ephemeral per-call pools against
    the shared persistent one); by default the persistent pool for
    ``config.workers`` is used.
    """
    tracer = tracer if tracer is not None else NULL_TRACER
    indices = list(range(config.count))
    with tracer.span(
        "wlgen.campaign",
        benchmark=config.benchmark,
        seed=config.seed,
        count=config.count,
        workers=config.workers,
    ):
        if config.workers <= 1:
            env = build_env(config, tracer=tracer)
            outcomes = []
            for index in indices:
                outcome = run_query(env, config, index)
                outcomes.append(outcome)
                if progress is not None:
                    progress(outcome)
            return CampaignReport(config=config, outcomes=outcomes)
        outcomes = _parallel_campaign(config, indices, tracer, progress, pool)
    return CampaignReport(config=config, outcomes=outcomes)


def _parallel_campaign(
    config: CampaignConfig, indices: List[int], tracer: Tracer, progress, pool
) -> List[QueryOutcome]:
    """Shard the index range over the persistent :mod:`repro.par` pool."""
    from ..par import ParError, get_pool

    chunk_size = max(1, len(indices) // (config.workers * 4))
    chunks = [
        indices[i : i + chunk_size] for i in range(0, len(indices), chunk_size)
    ]
    if tracer.enabled:
        tracer.event(
            "wlgen.campaign_fanout",
            workers=config.workers,
            chunks=len(chunks),
            queries=len(indices),
        )
    if pool is None:
        pool = get_pool(config.workers, tracer=tracer)
    on_result = None
    if progress is not None:
        def on_result(seq, chunk_result):
            for outcome in chunk_result:
                progress(outcome)
    try:
        results = pool.run(
            _run_chunk, config, chunks, tracer=tracer, on_result=on_result
        )
    except ParError as exc:
        raise CampaignError(f"sharded campaign failed: {exc}") from exc
    return [outcome for chunk_result in results for outcome in chunk_result]
