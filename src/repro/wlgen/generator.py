"""Seeded random acyclic SPJ(+aggregate) query sampling.

The generator grows join trees over the catalog's declared foreign-key
edges (so every sampled join is schematically meaningful, never a cross
product), decorates the chosen relations with selection predicates of
configurable classes (equality / range / IN-list), and optionally adds
group-by columns and a COUNT(*) aggregate — the
``sample_acyclic_aggregation_query`` pattern of the zero-shot-cost /
BRAD generators, specialized to this repo's typed :class:`Query`
objects.

Determinism contract: a :class:`QueryGenerator` built from the same
``(schema, database, config)`` produces the same query for the same
``(seed, index)`` pair, bit for bit, on any platform.  Each query gets
an independent ``random.Random`` stream keyed by ``f"{seed}:{index}"``
so campaigns can be sharded across processes without sharing RNG state.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from ..catalog.schema import Column, Schema
from ..datagen.database import Database
from ..exceptions import ReproError
from ..query.predicates import JoinPredicate, SelectionPredicate
from ..query.query import Query
from ..query.sql import render_sql

__all__ = ["GeneratorConfig", "GeneratedQuery", "QueryGenerator"]

#: Numeric dtypes eligible for range predicates.
_RANGE_DTYPES = ("int", "float", "date")

_RANGE_OPS = ("<", "<=", ">", ">=")


class GeneratorError(ReproError):
    """The generator was configured against an unusable catalog."""


@dataclass(frozen=True)
class GeneratorConfig:
    """Knobs of the random-query sampler — all part of the replay record.

    ``min_joins``/``max_joins`` bound the FK-tree size (``k`` joins span
    ``k+1`` relations; 0 allows single-table queries).  Each sampled
    relation then receives selection predicates with probability
    proportional to the ``min/max_predicates`` budget; per predicate the
    class is drawn from the ``equality/range/in`` weights.  Group-by
    columns (low-cardinality, at most ``max_group_by``) appear with
    probability ``groupby_probability`` and always imply a COUNT(*)
    aggregate; ``aggregate_probability`` adds global COUNT(*) queries on
    top.
    """

    min_joins: int = 1
    max_joins: int = 4
    min_predicates: int = 1
    max_predicates: int = 3
    equality_weight: float = 0.25
    range_weight: float = 0.6
    in_weight: float = 0.15
    max_in_values: int = 4
    groupby_probability: float = 0.2
    max_group_by: int = 2
    aggregate_probability: float = 0.15
    #: Distinct-count ceiling for a column to qualify as a group-by key.
    groupby_distinct_limit: int = 64

    def __post_init__(self):
        if not (0 <= self.min_joins <= self.max_joins):
            raise GeneratorError("generator: need 0 <= min_joins <= max_joins")
        if not (0 <= self.min_predicates <= self.max_predicates):
            raise GeneratorError(
                "generator: need 0 <= min_predicates <= max_predicates"
            )
        weights = (self.equality_weight, self.range_weight, self.in_weight)
        if min(weights) < 0 or sum(weights) <= 0:
            raise GeneratorError("generator: predicate-class weights must be "
                                 "non-negative and not all zero")
        if self.max_in_values < 1:
            raise GeneratorError("generator: max_in_values must be >= 1")
        if not (0.0 <= self.groupby_probability <= 1.0):
            raise GeneratorError("generator: groupby_probability outside [0, 1]")
        if not (0.0 <= self.aggregate_probability <= 1.0):
            raise GeneratorError("generator: aggregate_probability outside [0, 1]")
        if self.max_group_by < 1:
            raise GeneratorError("generator: max_group_by must be >= 1")

    def to_dict(self) -> Dict[str, object]:
        return {
            "min_joins": self.min_joins,
            "max_joins": self.max_joins,
            "min_predicates": self.min_predicates,
            "max_predicates": self.max_predicates,
            "equality_weight": self.equality_weight,
            "range_weight": self.range_weight,
            "in_weight": self.in_weight,
            "max_in_values": self.max_in_values,
            "groupby_probability": self.groupby_probability,
            "max_group_by": self.max_group_by,
            "aggregate_probability": self.aggregate_probability,
            "groupby_distinct_limit": self.groupby_distinct_limit,
        }

    @staticmethod
    def from_dict(data: Mapping[str, object]) -> "GeneratorConfig":
        return GeneratorConfig(**dict(data))


@dataclass
class GeneratedQuery:
    """One sampled query plus everything needed to replay it."""

    query: Query
    seed: int
    index: int
    sql: str = field(default="")

    def __post_init__(self):
        if not self.sql:
            self.sql = render_sql(self.query)

    @property
    def name(self) -> str:
        return self.query.name

    @property
    def geometry(self) -> str:
        return self.query.join_graph.describe()


class QueryGenerator:
    """Samples random acyclic queries over one catalog.

    ``database`` supplies the constant pools: equality/IN constants are
    drawn from values that actually occur, range cut-points from
    empirical quantiles, so every generated predicate is satisfiable on
    the generated data.  Without a database, constants fall back to the
    column's declared distinct-count domain (``0..distinct-1``, the
    dictionary-code convention of :mod:`repro.datagen`).
    """

    def __init__(
        self,
        schema: Schema,
        database: Optional[Database] = None,
        config: Optional[GeneratorConfig] = None,
    ):
        self.schema = schema
        self.database = database
        self.config = config if config is not None else GeneratorConfig()
        #: FK edges as join predicates, in a stable catalog order.
        self._edges: List[JoinPredicate] = [
            JoinPredicate(fk.child_table, fk.child_column,
                          fk.parent_table, fk.parent_column)
            for fk in schema.foreign_keys
        ]
        if not self._edges and self.config.min_joins > 0:
            raise GeneratorError(
                f"schema {schema.name!r} declares no foreign keys; "
                "only min_joins=0 is possible"
            )
        # Columns a join in this pool may touch, per table — excluded
        # from the selection pool so a filter never aliases a join key.
        join_cols = {(e.left_table, e.left_column) for e in self._edges}
        join_cols |= {(e.right_table, e.right_column) for e in self._edges}
        self._selectable: Dict[str, List[Column]] = {}
        self._groupable: Dict[str, List[Column]] = {}
        for tname in schema.table_names:
            table = schema.table(tname)
            self._selectable[tname] = [
                col for col in table.columns
                if (tname, col.name) not in join_cols
                and col.name != table.primary_key
            ]
            self._groupable[tname] = [
                col for col in self._selectable[tname]
                if col.distinct is not None
                and col.distinct <= self.config.groupby_distinct_limit
            ]

    # ------------------------------------------------------------------

    def generate(self, seed: int, index: int = 0) -> GeneratedQuery:
        """Sample query ``index`` of the campaign seeded with ``seed``."""
        rng = random.Random(f"{seed}:{index}")
        tables, joins = self._sample_join_tree(rng)
        selections = self._sample_selections(rng, tables)
        group_by, aggregate = self._sample_grouping(rng, tables)
        name = f"W{seed}_{index}"
        query = Query(
            name,
            self.schema,
            tables,
            selections=selections,
            joins=joins,
            group_by=group_by,
            aggregate=aggregate,
        )
        return GeneratedQuery(query=query, seed=seed, index=index)

    def generate_many(self, seed: int, count: int) -> List[GeneratedQuery]:
        """The first ``count`` queries of campaign ``seed``."""
        if count < 1:
            raise GeneratorError("generate_many needs count >= 1")
        return [self.generate(seed, index) for index in range(count)]

    # ------------------------------------------------------------------
    # Template instancing
    # ------------------------------------------------------------------

    def instantiate(self, seed: int, index: int, binding: int = 0) -> GeneratedQuery:
        """Binding ``binding`` of the template sampled at ``(seed, index)``.

        Binding 0 is the exemplar — exactly :meth:`generate`'s output.
        Higher bindings keep the whole structure (tables, joins,
        predicate columns, operator classes, IN-list lengths, grouping)
        and re-sample only the predicate *constants* from an independent
        stream keyed ``f"{seed}:{index}:b{binding}"``, so every binding
        of one template shares one template signature and the set of
        bindings is stable under re-dimensioning the campaign.
        """
        if binding < 0:
            raise GeneratorError("instantiate needs binding >= 0")
        exemplar = self.generate(seed, index)
        if binding == 0:
            return exemplar
        rng = random.Random(f"{seed}:{index}:b{binding}")
        base = exemplar.query
        selections = [
            self._resample_constant(rng, pred) for pred in base.selections
        ]
        query = Query(
            f"W{seed}_{index}b{binding}",
            self.schema,
            list(base.tables),
            selections=selections,
            joins=list(base.joins),
            group_by=list(base.group_by),
            aggregate=base.aggregate,
        )
        return GeneratedQuery(query=query, seed=seed, index=index)

    def generate_template(
        self, seed: int, index: int, bindings: int
    ) -> List[GeneratedQuery]:
        """All ``bindings`` instances of template ``(seed, index)``,
        exemplar (binding 0) first."""
        if bindings < 1:
            raise GeneratorError("generate_template needs bindings >= 1")
        return [
            self.instantiate(seed, index, binding) for binding in range(bindings)
        ]

    def _resample_constant(
        self, rng: random.Random, pred: SelectionPredicate
    ) -> SelectionPredicate:
        """A fresh constant for ``pred`` preserving its operator class."""
        col = self.schema.table(pred.table).column(pred.column)
        if pred.op in _RANGE_OPS:
            value = self._range_cutpoint(rng, pred.table, col)
            return SelectionPredicate(pred.table, pred.column, pred.op, value)
        values = self._value_pool(pred.table, col)
        if values.size == 0:
            return pred
        if pred.op == "=":
            return SelectionPredicate(
                pred.table, pred.column, "=",
                float(values[rng.randrange(values.size)]),
            )
        count = min(len(pred.value), values.size)
        idx = rng.sample(range(values.size), count)
        return SelectionPredicate(
            pred.table, pred.column, "in",
            tuple(float(values[i]) for i in idx),
        )

    # ------------------------------------------------------------------
    # Join-tree sampling
    # ------------------------------------------------------------------

    def _sample_join_tree(
        self, rng: random.Random
    ) -> Tuple[List[str], List[JoinPredicate]]:
        """Grow an acyclic FK-edge tree, BRAD-style.

        Starting from a random relation, repeatedly pick an FK edge with
        exactly one endpoint inside the tree; the other endpoint joins.
        Acyclicity is structural — an edge whose both endpoints are
        already in would close a cycle, so it is never eligible.
        """
        config = self.config
        target = rng.randint(config.min_joins, config.max_joins)
        if target == 0 or not self._edges:
            return [rng.choice(self.schema.table_names)], []
        first = rng.choice(self._edges)
        tables = list(first.tables)
        rng.shuffle(tables)
        joins = [first]
        while len(joins) < target:
            frontier = [
                edge for edge in self._edges
                if (edge.left_table in tables) != (edge.right_table in tables)
            ]
            if not frontier:
                break  # tree exhausted the FK graph; accept a smaller query
            edge = rng.choice(frontier)
            joins.append(edge)
            tables.append(
                edge.right_table if edge.left_table in tables else edge.left_table
            )
        return tables, joins

    # ------------------------------------------------------------------
    # Selection sampling
    # ------------------------------------------------------------------

    def _sample_selections(
        self, rng: random.Random, tables: Sequence[str]
    ) -> List[SelectionPredicate]:
        pool = [
            (tname, col)
            for tname in tables
            for col in self._selectable.get(tname, ())
        ]
        if not pool:
            return []
        config = self.config
        want = rng.randint(config.min_predicates, config.max_predicates)
        picks = rng.sample(pool, min(want, len(pool)))
        selections = []
        for tname, col in picks:
            pred = self._sample_predicate(rng, tname, col)
            if pred is not None:
                selections.append(pred)
        # A pick can yield no predicate (no applicable class for the
        # column under this config); redraw from the rest of the pool so
        # restrictive configs still meet the predicate budget.  The rng
        # stream is only consumed when a redraw actually happens, so
        # configs where every pick succeeds are unaffected.
        remaining = [entry for entry in pool if entry not in picks]
        while len(selections) < want and remaining:
            tname, col = remaining.pop(rng.randrange(len(remaining)))
            pred = self._sample_predicate(rng, tname, col)
            if pred is not None:
                selections.append(pred)
        return selections

    def _sample_predicate(
        self, rng: random.Random, table: str, col: Column
    ) -> Optional[SelectionPredicate]:
        config = self.config
        kinds, weights = ["equality", "in"], [
            config.equality_weight, config.in_weight
        ]
        if col.dtype in _RANGE_DTYPES:
            kinds.append("range")
            weights.append(config.range_weight)
        if sum(weights) <= 0:
            # No predicate class applies (e.g. a range-only config and a
            # non-range column): skip the column rather than fail.
            return None
        kind = rng.choices(kinds, weights=weights, k=1)[0]
        if kind == "range":
            value = self._range_cutpoint(rng, table, col)
            return SelectionPredicate(table, col.name, rng.choice(_RANGE_OPS), value)
        values = self._value_pool(table, col)
        if values.size == 0:
            return None
        if kind == "equality":
            return SelectionPredicate(
                table, col.name, "=", float(values[rng.randrange(values.size)])
            )
        count = rng.randint(1, min(config.max_in_values, values.size))
        idx = rng.sample(range(values.size), count)
        return SelectionPredicate(
            table, col.name, "in", tuple(float(values[i]) for i in idx)
        )

    def _value_pool(self, table: str, col: Column) -> np.ndarray:
        """Distinct constants that occur for equality/IN predicates."""
        if self.database is not None:
            return np.unique(self.database.column(table, col.name))
        domain = col.distinct if col.distinct is not None else 1000
        return np.arange(domain, dtype=float)

    def _range_cutpoint(self, rng: random.Random, table: str, col: Column) -> float:
        """A cut-point with non-trivial selectivity on both sides."""
        fraction = rng.uniform(0.05, 0.95)
        if self.database is not None:
            arr = self.database.column(table, col.name)
            return float(np.quantile(arr.astype(float), fraction))
        domain = col.distinct if col.distinct is not None else 1000
        return float(fraction * domain)

    # ------------------------------------------------------------------
    # Grouping / aggregation
    # ------------------------------------------------------------------

    def _sample_grouping(
        self, rng: random.Random, tables: Sequence[str]
    ) -> Tuple[List[Tuple[str, str]], bool]:
        config = self.config
        aggregate = rng.random() < config.aggregate_probability
        group_by: List[Tuple[str, str]] = []
        if rng.random() < config.groupby_probability:
            pool = [
                (tname, col.name)
                for tname in tables
                for col in self._groupable.get(tname, ())
            ]
            if pool:
                count = rng.randint(1, min(config.max_group_by, len(pool)))
                group_by = rng.sample(pool, count)
        return group_by, aggregate or bool(group_by)
