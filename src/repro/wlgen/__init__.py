"""Workload generation & MSO fuzzing: random queries, per-query ESS axes.

Three layers:

- :mod:`~repro.wlgen.generator` — seeded random acyclic SPJ+aggregate
  query sampling over the catalog's FK graph;
- :mod:`~repro.wlgen.dimensioning` — per-query ESS dimension discovery
  via error-sensitivity ranking (:mod:`repro.ess.dimensioning`);
- :mod:`~repro.wlgen.campaign` — sharded fuzzing campaigns validating
  the measured MSO of every generated query against the 4(1+λ)ρ bound.
"""

from .campaign import (
    CAMPAIGN_RESOLUTIONS,
    CampaignConfig,
    CampaignEnv,
    CampaignReport,
    QueryOutcome,
    build_env,
    run_campaign,
    run_query,
)
from .dimensioning import DimensioningResult, dimension_query
from .generator import GeneratedQuery, GeneratorConfig, QueryGenerator

__all__ = [
    "CAMPAIGN_RESOLUTIONS",
    "CampaignConfig",
    "CampaignEnv",
    "CampaignReport",
    "DimensioningResult",
    "GeneratedQuery",
    "GeneratorConfig",
    "QueryGenerator",
    "QueryOutcome",
    "build_env",
    "dimension_query",
    "run_campaign",
    "run_query",
]
