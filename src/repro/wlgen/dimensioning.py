"""Per-query ESS dimensioning for generated workloads.

Hand-authored workloads (``query/workload.py``) ship curated dimension
lists; a random query has none, so the campaign must *discover* which
predicates deserve ESS axes.  This module is the glue between the
generator and the error-sensitivity strategy in
:mod:`repro.ess.dimensioning`: rank every predicate of a query by the
worst-case damage a selectivity error on it could do, keep the top few,
and package the result (dimensions + full score table + the base
assignment used) for the campaign record.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional

from ..datagen.database import Database
from ..ess.dimensioning import SensitivityScore, sensitivity_error_dimensions
from ..ess.space import ErrorDimension
from ..optimizer.optimizer import Optimizer
from ..optimizer.selectivity import actual_selectivities
from ..query.query import Query

__all__ = ["DimensioningResult", "dimension_query"]


@dataclass
class DimensioningResult:
    """The chosen ESS axes for one query, with full provenance."""

    dimensions: List[ErrorDimension]
    scores: List[SensitivityScore]
    base_assignment: Dict[str, float]

    @property
    def pids(self) -> List[str]:
        return [dim.pid for dim in self.dimensions]

    def to_dict(self) -> Dict[str, object]:
        return {
            "dimensions": self.pids,
            "scores": [
                {
                    "pid": score.dimension.pid,
                    "penalty": score.penalty,
                    "cost_span": score.cost_span,
                }
                for score in self.scores
            ],
            "base_assignment": dict(sorted(self.base_assignment.items())),
        }


def dimension_query(
    optimizer: Optimizer,
    query: Query,
    database: Database,
    max_dims: int = 3,
    min_penalty: float = 1.05,
    resolution: int = 4,
    base_assignment: Optional[Mapping[str, float]] = None,
) -> DimensioningResult:
    """Choose ESS dimensions for one generated query.

    The base assignment defaults to the query's *actual* selectivities
    on ``database`` — the campaign knows ground truth, so sensitivity is
    measured around the point the executed query will actually occupy.
    """
    if base_assignment is None:
        base_assignment = actual_selectivities(query, database)
    dimensions, scores = sensitivity_error_dimensions(
        optimizer,
        query,
        base_assignment,
        max_dims=max_dims,
        min_penalty=min_penalty,
        resolution=resolution,
    )
    return DimensioningResult(
        dimensions=dimensions,
        scores=scores,
        base_assignment=dict(base_assignment),
    )
