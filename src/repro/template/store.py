"""In-memory LRU store of compiled bouquets keyed by template signature.

This is the *first* tier of the serving cache: the exact-key
:class:`~repro.serve.cache.BouquetArtifactStore` answers "have I compiled
exactly this query under exactly these statistics", while the template
store answers "have I compiled *any instance of this shape*" — a hit
yields a rebind (:mod:`repro.template.rebind`) instead of a full
compile.

Entries are keyed by ``(template digest, statistics digest, config
digest)``: a statistics refresh or a config change must never rebind
from an artifact compiled under a different world view.  On a refresh
the serving layer either drops the template tier
(:meth:`TemplateStore.invalidate_statistics`) or re-registers the
artifacts it managed to patch through the drift path under the new
statistics digest.

The store is memory-only by design: the exact-key store already
persists every compiled artifact to disk, and a template entry is just a
*pointer* to one representative compiled instance plus its signature —
after a restart the first compile per template repopulates the tier.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from .signature import TemplateSignature

__all__ = ["TemplateEntry", "TemplateStore"]

DEFAULT_TEMPLATE_CAPACITY = 64


@dataclass
class TemplateEntry:
    """One representative compiled instance of a template."""

    signature: TemplateSignature
    compiled: "object"  # repro.api.CompiledBouquet
    statistics_digest: str
    config_digest: str
    hits: int = 0


class TemplateStore:
    """Thread-safe LRU of :class:`TemplateEntry` objects."""

    def __init__(self, capacity: int = DEFAULT_TEMPLATE_CAPACITY):
        if capacity < 1:
            raise ValueError("TemplateStore capacity must be >= 1")
        self.capacity = capacity
        self._entries: "OrderedDict[Tuple[str, str, str], TemplateEntry]" = (
            OrderedDict()
        )
        self._lock = threading.Lock()

    @staticmethod
    def _key(
        signature_digest: str, statistics_digest: str, config_digest: str
    ) -> Tuple[str, str, str]:
        return (signature_digest, statistics_digest, config_digest)

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def lookup(
        self,
        signature: TemplateSignature,
        statistics_digest: str,
        config_digest: str,
    ) -> Optional[TemplateEntry]:
        key = self._key(signature.digest, statistics_digest, config_digest)
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                return None
            self._entries.move_to_end(key)
            entry.hits += 1
            return entry

    def put(
        self,
        signature: TemplateSignature,
        compiled,
        statistics_digest: str,
        config_digest: str,
    ) -> TemplateEntry:
        """Register ``compiled`` as the template's representative.

        First writer wins: once a template has a representative, later
        instances rebind from it, so replacing it would only churn the
        rebinding dictionaries for no benefit.
        """
        key = self._key(signature.digest, statistics_digest, config_digest)
        entry = TemplateEntry(
            signature=signature,
            compiled=compiled,
            statistics_digest=statistics_digest,
            config_digest=config_digest,
        )
        with self._lock:
            existing = self._entries.get(key)
            if existing is not None:
                self._entries.move_to_end(key)
                return existing
            self._entries[key] = entry
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
            return entry

    def invalidate_statistics(self, current_fingerprint: str) -> int:
        """Drop every entry *not* compiled under the live statistics
        fingerprint (same convention as
        :meth:`repro.serve.cache.BouquetArtifactStore.invalidate_statistics`).
        Returns the number of entries removed."""
        with self._lock:
            stale = [
                key
                for key, entry in self._entries.items()
                if entry.statistics_digest != current_fingerprint
            ]
            for key in stale:
                del self._entries[key]
            return len(stale)

    def clear(self) -> int:
        with self._lock:
            count = len(self._entries)
            self._entries.clear()
            return count

    def entries(self) -> List[TemplateEntry]:
        with self._lock:
            return list(self._entries.values())

    def snapshot(self) -> Dict[str, int]:
        with self._lock:
            return {
                "template_entries": len(self._entries),
                "template_hits": sum(e.hits for e in self._entries.values()),
            }
