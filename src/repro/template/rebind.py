"""Rebinding a compiled bouquet onto a new instance of its template.

The compile is a pure function of (query structure, error dimensions,
base assignment, grid, cost model).  Two instances of one template share
everything but the predicate constants, and constants reach the compile
through exactly two doors: the pid *strings* embedded in plans and
spaces, and the base-assignment *selectivities* of non-dimension
predicates.  So a rebind is:

1. **Remap the skeleton.**  Translate the template artifact's pids,
   tables, and plan trees slot-for-slot onto the instance
   (:meth:`~repro.template.signature.TemplateSignature.pid_map_to`),
   preserving plan ids — after this step the old bouquet *is* a
   compiled bouquet for the instance query, costed under the template's
   base assignment.
2. **Delta-refresh onto the instance's base.**  Hand the remapped
   bouquet to :func:`repro.drift.refresh.delta_refresh` against the
   instance's own space.  When the constants moved only on
   error-dimension predicates (the paper's parametric-workload regime:
   the grid overrides those selectivities anyway) the refresh takes its
   identity path — **zero optimizer calls**.  When a non-dimension
   constant moved, the suspect-slab machinery re-plans just the
   locations the movement could flip.
3. **Fall back loudly.**  Anything that breaks the isomorphism — the
   instance classifies different error dimensions, the grid differs,
   renamed relations are not statistically interchangeable, or the
   re-costed contours diverge beyond tolerance — raises
   :class:`~repro.exceptions.TemplateError` with a stable ``reason``;
   callers run a full compile and count ``template.fallbacks``.
   Correctness never depends on the cache.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Optional

from ..core.bouquet import PlanBouquet
from ..core.contours import Contour
from ..ess.diagram import PlanDiagram
from ..ess.space import SelectivitySpace
from ..exceptions import DriftError, ReproError, TemplateError
from ..obs.tracer import NULL_TRACER, Tracer
from ..optimizer.optimizer import PlanRegistry
from ..optimizer.plans import (
    Aggregate,
    IndexLookup,
    IndexScan,
    Join,
    PlanNode,
    SeqScan,
)
from ..query.query import Query
from .signature import TemplateSignature, template_signature

__all__ = [
    "RebindOutcome",
    "rebind_compiled",
    "remap_plan",
]

#: Default ceiling on the fraction of ESS locations the delta path may
#: find suspect before the rebind is declared divergent.  Past this
#: point a full compile is usually cheaper than the re-plan anyway.
DEFAULT_MAX_SUSPECT_FRACTION = 0.5

#: Default ceiling on the relative gap between the carried-over plans
#: and the DP optimum at the probe locations (see
#: ``max_probe_divergence`` in :func:`repro.drift.refresh.delta_refresh`).
DEFAULT_MAX_PROBE_DIVERGENCE = 0.25


@dataclass
class RebindOutcome:
    """A rebound artifact plus how much work the rebind cost."""

    compiled: "object"  # repro.api.CompiledBouquet
    strategy: str  # "identity" | "delta"
    total_locations: int
    planned_locations: int

    @property
    def planned_fraction(self) -> float:
        return self.planned_locations / max(1, self.total_locations)


def remap_plan(
    plan: PlanNode,
    table_map: Mapping[str, str],
    pid_map: Mapping[str, str],
) -> PlanNode:
    """Translate a plan tree slot-for-slot onto another template instance.

    Table names go through ``table_map``, predicate pids through
    ``pid_map``; column names are structural (equal across instances by
    signature construction) and pass through unchanged.
    """

    def _t(table: str) -> str:
        return table_map.get(table, table)

    def _p(pid: str) -> str:
        return pid_map.get(pid, pid)

    if isinstance(plan, SeqScan):
        return SeqScan(_t(plan.table), tuple(_p(p) for p in plan.filter_pids))
    if isinstance(plan, IndexScan):
        return IndexScan(
            _t(plan.table),
            _p(plan.index_pid),
            tuple(_p(p) for p in plan.filter_pids),
        )
    if isinstance(plan, IndexLookup):
        return IndexLookup(
            _t(plan.table),
            plan.lookup_column,
            tuple(_p(p) for p in plan.filter_pids),
        )
    if isinstance(plan, Join):
        return Join(
            plan.algo,
            remap_plan(plan.left, table_map, pid_map),
            remap_plan(plan.right, table_map, pid_map),
            tuple(_p(p) for p in plan.join_pids),
        )
    if isinstance(plan, Aggregate):
        return Aggregate(
            remap_plan(plan.child, table_map, pid_map),
            tuple((_t(t), c) for t, c in plan.group_columns),
        )
    raise TemplateError(
        f"cannot remap plan node {plan.signature()}", reason="unknown-node"
    )


def _tables_interchangeable(catalog, a: str, b: str) -> bool:
    """True when relation ``b`` is a drop-in replacement for ``a``.

    Every input the cost model and estimator consult must agree: row
    count, page count, primary key, per-column dtype/distinct hints,
    index availability, and the full column statistics.  Template
    signatures already guarantee the *structural* match (same column
    names in the predicates); this guards the numeric world view, which
    the signature deliberately does not hash.
    """
    schema = catalog.schema
    ta, tb = schema.table(a), schema.table(b)
    if ta.row_count != tb.row_count or ta.pages != tb.pages:
        return False
    if ta.primary_key != tb.primary_key:
        return False
    cols_a = {c.name: c for c in ta.columns}
    cols_b = {c.name: c for c in tb.columns}
    if set(cols_a) != set(cols_b):
        return False
    for name, col in cols_a.items():
        peer = cols_b[name]
        if col.dtype != peer.dtype or col.distinct != peer.distinct:
            return False
        if schema.has_index(a, name) != schema.has_index(b, name):
            return False
    stats = catalog.statistics
    if stats is not None:
        sa, sb = stats.table(a), stats.table(b)
        if (sa is None) != (sb is None):
            return False
        if sa is not None:
            if sa.row_count != sb.row_count:
                return False
            if sa.column_names != sb.column_names:
                return False
            for name in sa.column_names:
                ca, cb = sa.column(name), sb.column(name)
                if (
                    ca.min_value != cb.min_value
                    or ca.max_value != cb.max_value
                    or ca.n_distinct != cb.n_distinct
                    or ca.null_fraction != cb.null_fraction
                    or ca.histogram_bounds != cb.histogram_bounds
                    or ca.mcv_values != cb.mcv_values
                    or ca.mcv_fractions != cb.mcv_fractions
                ):
                    return False
    return True


def _remapped_bouquet(
    template_bouquet: PlanBouquet,
    query: Query,
    space: SelectivitySpace,
    table_map: Mapping[str, str],
    pid_map: Mapping[str, str],
) -> PlanBouquet:
    """The template's bouquet re-expressed over the instance query.

    Plan ids are preserved: the template registry's ids are contiguous
    first-registration order, so re-registering the remapped plans in id
    order reproduces them exactly — the grid arrays, contours, and
    budgets carry over untouched.
    """
    registry = PlanRegistry()
    for plan_id in template_bouquet.registry.plan_ids:
        new_id, _ = registry.register(
            remap_plan(template_bouquet.registry.plan(plan_id), table_map, pid_map)
        )
        if new_id != plan_id:
            # Two template plans collapsing onto one signature after the
            # remap would silently merge diagram cells; refuse instead.
            raise TemplateError(
                f"plan id {plan_id} remapped onto existing id {new_id}",
                reason="plan-collision",
            )
    # No cost cache: delta_refresh builds its own caches over the new
    # space, and a deserialized template artifact may not carry one.
    diagram = PlanDiagram(
        space,
        template_bouquet.diagram.plan_ids,
        template_bouquet.diagram.costs,
        registry,
        cache=None,
    )
    contours = [
        Contour(
            index=c.index,
            cost=c.cost,
            locations=list(c.locations),
            plan_at=dict(c.plan_at),
        )
        for c in template_bouquet.contours
    ]
    return PlanBouquet(
        space=space,
        diagram=diagram,
        registry=registry,
        contours=contours,
        budgets=list(template_bouquet.budgets),
        plan_ids=list(template_bouquet.plan_ids),
        lambda_=template_bouquet.lambda_,
        ratio=template_bouquet.ratio,
    )


def rebind_compiled(
    template_compiled,
    template_sig: TemplateSignature,
    query: Query,
    catalog,
    *,
    instance_sig: Optional[TemplateSignature] = None,
    sql: Optional[str] = None,
    tracer: Optional[Tracer] = None,
    max_suspect_fraction: Optional[float] = DEFAULT_MAX_SUSPECT_FRACTION,
    max_probe_divergence: Optional[float] = DEFAULT_MAX_PROBE_DIVERGENCE,
) -> RebindOutcome:
    """Rebind ``template_compiled`` onto ``query`` (a new instance of the
    same template) — see the module docstring for the pass structure.

    Raises :class:`~repro.exceptions.TemplateError` whenever the rebind
    cannot be carried out soundly; the caller then falls back to a full
    compile and records ``exc.reason``.
    """
    from ..api import CompiledBouquet, default_error_dimensions
    from ..drift.refresh import delta_refresh
    from ..optimizer.selectivity import actual_selectivities

    tracer = tracer if tracer is not None else NULL_TRACER
    config = template_compiled.config
    if instance_sig is None:
        instance_sig = template_signature(query, catalog.schema, catalog.statistics)
    if instance_sig.digest != template_sig.digest:
        raise TemplateError(
            "query is not an instance of the cached template",
            reason="template-mismatch",
        )
    table_map: Dict[str, str] = template_sig.table_map_to(instance_sig)
    pid_map: Dict[str, str] = template_sig.pid_map_to(instance_sig)
    for old, new in table_map.items():
        if old != new and not _tables_interchangeable(catalog, old, new):
            raise TemplateError(
                f"renamed relation {old!r} -> {new!r} is not statistically "
                "interchangeable",
                reason="renamed-relation",
            )

    dims = default_error_dimensions(query, catalog.schema, catalog.statistics)
    if not dims:
        raise TemplateError(
            "instance has no error dimensions", reason="no-dimensions"
        )
    old_space = template_compiled.space
    expected = [
        (pid_map.get(d.pid, d.pid), d.lo, d.hi) for d in old_space.dimensions
    ]
    if [(d.pid, d.lo, d.hi) for d in dims] != expected:
        raise TemplateError(
            "instance error dimensions do not match the template's",
            reason="dimension-mismatch",
        )
    resolution = config.resolution_for(len(dims))
    if tuple([resolution] * len(dims)) != old_space.shape:
        raise TemplateError(
            "template grid does not match the config resolution",
            reason="grid-mismatch",
        )

    optimizer = catalog.optimizer(config, tracer=tracer)
    if catalog.database is not None:
        base = actual_selectivities(query, catalog.database)
    else:
        base = optimizer.estimated_assignment(query)
    new_space = SelectivitySpace(query, dims, list(old_space.shape), base)
    template_base = {
        pid_map.get(pid, pid): value
        for pid, value in old_space.base_assignment.items()
    }
    carried_space = SelectivitySpace(
        query, dims, list(old_space.shape), template_base
    )

    with tracer.span(
        "template.rebind", query=query.name, template=template_sig.digest
    ) as span:
        carried = _remapped_bouquet(
            template_compiled.bouquet, query, carried_space, table_map, pid_map
        )
        try:
            result = delta_refresh(
                carried,
                optimizer,
                new_space,
                lambda_=config.lambda_,
                ratio=config.ratio,
                max_suspect_fraction=max_suspect_fraction,
                max_probe_divergence=max_probe_divergence,
            )
        except DriftError as exc:
            raise TemplateError(
                f"rebound contours diverged: {exc}", reason="divergence"
            ) from exc
        except ReproError as exc:
            raise TemplateError(
                f"delta refresh failed: {exc}", reason="refresh-failed"
            ) from exc
        span.set(
            strategy=result.strategy,
            planned=result.planned_locations,
            total=result.total_locations,
        )
    compiled = CompiledBouquet(
        query=query, bouquet=result.bouquet, config=config, sql=sql
    )
    return RebindOutcome(
        compiled=compiled,
        strategy=result.strategy,
        total_locations=result.total_locations,
        planned_locations=result.planned_locations,
    )
