"""Cross-query bouquet template cache: compile once per query template,
rebind per instance.

The paper's target regime is parametric workloads — a handful of query
*templates* with varying constants.  The exact-key serving cache treats
every constant binding as a distinct artifact; this package lifts plan
canonicalization (:meth:`~repro.optimizer.plans.PlanNode.canonical_signature`)
one level, to whole queries:

- :mod:`repro.template.signature` — the structural canonicalizer
  (template signatures, invariant under constants and twin-relation
  renaming, plus the slot-for-slot rebinding dictionaries);
- :mod:`repro.template.rebind` — the rebinding engine (remap a compiled
  bouquet's plan skeleton onto a new instance, delta-refresh its costs,
  fall back loudly via :class:`~repro.exceptions.TemplateError`);
- :mod:`repro.template.store` — the LRU template tier the serving layer
  consults in front of the exact-key artifact store.
"""

from .rebind import RebindOutcome, rebind_compiled, remap_plan
from .signature import TemplateSignature, canonical_table_order, template_signature
from .store import TemplateEntry, TemplateStore

__all__ = [
    "RebindOutcome",
    "TemplateEntry",
    "TemplateSignature",
    "TemplateStore",
    "canonical_table_order",
    "rebind_compiled",
    "remap_plan",
    "template_signature",
]
