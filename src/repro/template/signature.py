"""Structural query-template signatures.

A *template* is what remains of a query once every predicate constant is
stripped and the relations are reduced to their structural role: the
join-graph shape, the predicate types per (table, column), the group-by
/ aggregate shape, and — when a catalog is supplied — the error
dimensions the compile would select.  Two *instances* of the same
template (same shape, different constants) share a signature, which is
the lookup key of the cross-query bouquet template cache
(:mod:`repro.template.store`).

Canonicalization is the query-level sibling of
:meth:`repro.optimizer.plans.PlanNode.canonical_signature`: relations
are ordered by a Weisfeiler–Leman-style label refinement over the join
graph (labels built from name-free per-table profiles, so renaming a
relation to a structurally identical twin does not change its slot),
with the table *name* only as the final deterministic tie-break between
genuinely symmetric relations.  The rendering then refers to relations
by slot index (``@0``, ``@1``, …) and to constants by ``?`` (IN-lists
keep their length — a 2-list and a 4-list cost differently), so the
text — and its digest — is invariant under both constant changes and
twin-relation renaming.

The same canonical orders double as the *rebinding dictionary*: matching
a template signature against an instance signature pairs table slot i
with table slot i and predicate slot k with predicate slot k, which is
how :mod:`repro.template.rebind` maps a compiled bouquet's pids and plan
trees onto a new instance.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..catalog.schema import Schema
from ..catalog.statistics import DatabaseStatistics
from ..query.predicates import JoinPredicate, SelectionPredicate
from ..query.query import Query

__all__ = [
    "TemplateSignature",
    "canonical_table_order",
    "template_signature",
]

#: Refinement rounds beyond which labels cannot change (graph diameter
#: is bounded by the table count).
_MAX_ROUNDS_CAP = 16


def _digest(payload: str) -> str:
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:20]


def _op_class(pred: SelectionPredicate) -> str:
    """The predicate's constants-stripped operator class.

    IN-lists keep their length: the estimator and the cost model both
    see the list length, so a 2-list and a 4-list are different
    templates.
    """
    if pred.op == "in":
        return f"in{len(pred.value)}"
    return pred.op


def _selection_template(slot: int, pred: SelectionPredicate) -> str:
    return f"@{slot}.{pred.column}{_op_class(pred)}?"


def _local_profile(query: Query, table: str) -> str:
    """Name-free structural profile of one relation in the query.

    Column names are deliberately *kept* — they are structure, not
    constants: a filter on ``p_retailprice`` and a filter on ``p_size``
    are different templates because the statistics (and any index) the
    compile consults differ.  Only the relation's own name is omitted,
    which is what makes the profile renaming-invariant.
    """
    sels = sorted(
        f"{p.column}:{_op_class(p)}" for p in query.selections if p.table == table
    )
    groups = sorted(c for t, c in query.group_by if t == table)
    degree = sum(1 for j in query.joins if table in j.tables)
    return f"sel[{','.join(sels)}]|grp[{','.join(groups)}]|deg{degree}"


def canonical_table_order(query: Query) -> List[str]:
    """Relations in canonical slot order, invariant under renaming.

    Weisfeiler–Leman label refinement: start from the name-free local
    profiles, then repeatedly fold in the multiset of
    ``(own join column, peer join column, peer label)`` over incident
    join edges.  After ``min(|tables|, cap)`` rounds the labels are
    stable; ties between still-identical labels (genuinely symmetric
    relations) break on the table name, the only point where the name
    enters.
    """
    tables = list(query.tables)
    labels: Dict[str, str] = {
        t: _digest(_local_profile(query, t)) for t in tables
    }
    for _ in range(min(len(tables), _MAX_ROUNDS_CAP)):
        refined = {}
        for t in tables:
            edges = sorted(
                f"{j.column_for(t)}~{j.column_for(j.other(t))}~{labels[j.other(t)]}"
                for j in query.joins
                if t in j.tables
            )
            refined[t] = _digest(labels[t] + "|" + ";".join(edges))
        if refined == labels:
            break
        labels = refined
    return sorted(tables, key=lambda t: (labels[t], t))


@dataclass(frozen=True)
class TemplateSignature:
    """A query's template identity plus its rebinding dictionary.

    ``text``/``digest`` identify the template; ``table_order``,
    ``selection_order`` and ``join_order`` record which concrete tables
    and predicate pids of *this instance* sit in each canonical slot, so
    two signatures with equal digests define a slot-for-slot mapping
    between their instances.
    """

    text: str
    digest: str
    table_order: Tuple[str, ...]
    selection_order: Tuple[str, ...]
    join_order: Tuple[str, ...]
    dimension_pids: Tuple[str, ...] = field(default=())

    @property
    def predicate_order(self) -> Tuple[str, ...]:
        """Every predicate pid in canonical slot order (selections first)."""
        return self.selection_order + self.join_order

    def pid_map_to(self, other: "TemplateSignature") -> Dict[str, str]:
        """Slot-for-slot pid mapping onto another instance of the same
        template (signature digests must match)."""
        if other.digest != self.digest:
            raise ValueError(
                "pid_map_to needs two instances of the same template; "
                f"digests {self.digest} != {other.digest}"
            )
        return dict(zip(self.predicate_order, other.predicate_order))

    def table_map_to(self, other: "TemplateSignature") -> Dict[str, str]:
        """Slot-for-slot table mapping onto another instance."""
        if other.digest != self.digest:
            raise ValueError(
                "table_map_to needs two instances of the same template; "
                f"digests {self.digest} != {other.digest}"
            )
        return dict(zip(self.table_order, other.table_order))


def template_signature(
    query: Query,
    schema: Optional[Schema] = None,
    statistics: Optional[DatabaseStatistics] = None,
) -> TemplateSignature:
    """Canonicalize ``query`` into its template signature.

    With ``schema`` (and optionally ``statistics``) supplied, the
    signature also folds in the **error-dimension axes** the compile
    would select (:func:`repro.api.default_error_dimensions`): two
    instances whose constants push the §4.1 uncertainty classification
    apart — e.g. an equality constant moving on/off the MCV list — get
    *different* template keys instead of a doomed rebind attempt.
    """
    slot_of = {t: i for i, t in enumerate(canonical_table_order(query))}
    by_slot = sorted(slot_of, key=slot_of.get)

    # Selections: canonical order is (slot, column, op-class), with the
    # constant value only as a last-resort tie-break between predicates
    # that are template-identical (same column, same operator) — the
    # i-th smallest constant of one instance maps to the i-th smallest
    # of the other.
    def _sel_key(pred: SelectionPredicate):
        value = pred.value if pred.op != "in" else pred.value[0]
        return (slot_of[pred.table], pred.column, _op_class(pred), value)

    selections = sorted(query.selections, key=_sel_key)
    sel_texts = [_selection_template(slot_of[p.table], p) for p in selections]

    # Joins carry no constants; canonical order is their slot-rendered
    # text (slots are renaming-invariant, so this order is too).
    def _join_text(join: JoinPredicate) -> str:
        sides = sorted(
            (slot_of[t], join.column_for(t)) for t in join.tables
        )
        return "=".join(f"@{s}.{c}" for s, c in sides)

    joins = sorted(query.joins, key=_join_text)
    join_texts = [_join_text(j) for j in joins]

    group_texts = sorted(f"@{slot_of[t]}.{c}" for t, c in query.group_by)
    parts = [
        f"tables={len(by_slot)}",
        "profiles=" + ";".join(_local_profile(query, t) for t in by_slot),
        "sel=" + ";".join(sel_texts),
        "join=" + ";".join(join_texts),
        "group=" + ",".join(group_texts),
        "agg=" + ("1" if query.aggregate else "0"),
    ]

    dim_pids: Tuple[str, ...] = ()
    if schema is not None:
        from ..api import default_error_dimensions

        dims = default_error_dimensions(query, schema, statistics)
        pid_text = {}
        for pred, text in zip(selections, sel_texts):
            pid_text[pred.pid] = text
        for join, text in zip(joins, join_texts):
            pid_text[join.pid] = text
        parts.append(
            "dims="
            + ";".join(
                f"{pid_text[d.pid]}[{d.lo:.9g},{d.hi:.9g}]" for d in dims
            )
        )
        dim_pids = tuple(d.pid for d in dims)

    text = "|".join(parts)
    return TemplateSignature(
        text=text,
        digest=_digest(text),
        table_order=tuple(by_slot),
        selection_order=tuple(p.pid for p in selections),
        join_order=tuple(j.pid for j in joins),
        dimension_pids=dim_pids,
    )
