"""Command-line interface: ``python -m repro <command>``.

Commands operate on deterministic synthetic environments (benchmark +
scale + seed fully determine the data), so results are reproducible
across machines:

* ``schema``  — show the generated schema's tables and cardinalities;
* ``explain`` — optimize a SQL query at estimated selectivities and
  print the chosen plan;
* ``compile`` — build a plan bouquet for a SQL query, optionally
  validating and saving it;
* ``advise``  — apply §8's deployment rules (native / re-optimize /
  bouquet) to a query instance;
* ``run``     — execute a query through the bouquet (compiling first or
  loading a saved artifact) and print the execution trace;
* ``trace``   — summarize a JSONL telemetry trace (written with
  ``compile/run --trace FILE``) into a Table 3-style per-contour account;
* ``serve-stats`` — summarize the serving-layer account (cache ladder,
  single-flight coalescing, degradations) of a JSONL trace;
* ``serve-smoke`` — compile-cache the canned workload twice and verify
  the warm pass is all cache hits and at least 5x faster;
* ``serve``   — run the asyncio HTTP/JSON front-end (the v1 envelope
  protocol: POST /v1/serve, GET /v1/stats, GET /healthz) over a
  synthetic environment, with per-tenant admission quotas;
* ``serve-load`` — replay thousands of concurrent sessions against the
  front-end (simulated fast path or real asyncio) and gate on zero
  silent drops;
* ``fuzz``    — generate a seeded random workload, pick each query's ESS
  dimensions by error-sensitivity, and validate every measured MSO
  against the 4(1+λ)ρ guarantee (``--out`` writes BENCH_workload.json);
* ``refresh`` — compile a bouquet, inject localized statistics drift,
  and refresh it: ``--delta`` runs the delta engine (re-planning only
  drift-suspect ESS locations), ``--verify`` checks the result
  bit-for-bit against a full recompile.

Commands are built on the :mod:`repro.api` facade and the
:class:`~repro.serve.ServeRequest` envelope — the same calling
convention the in-process API and the HTTP wire use.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from .api import BouquetConfig, Catalog, CompiledBouquet, compile_bouquet
from .api import execute as api_execute
from .catalog.tpcds import tpcds_generator_spec, tpcds_schema
from .catalog.tpch import tpch_generator_spec, tpch_schema
from .core.advisor import recommend_processing_mode
from .core.validation import validate_bouquet
from .datagen.database import Database
from .exceptions import ReproError
from .obs import JsonlSink, Tracer, read_trace, summarize_serving, summarize_trace
from .optimizer.explain import explain as explain_plan
from .query.sql import parse_query
from .serve.envelope import ServeRequest


def _session_tracer(args) -> Tracer:
    """A JSONL-sinked tracer when ``--trace`` was given, else null."""
    from .obs import NULL_TRACER

    if getattr(args, "trace", None):
        try:
            return Tracer(JsonlSink(args.trace))
        except OSError as exc:
            raise ReproError(f"cannot open trace file: {exc}") from exc
    return NULL_TRACER


def _finish_trace(tracer: Tracer, args):
    if getattr(args, "trace", None):
        tracer.close()
        print(f"trace written to {args.trace}")


def _build_environment(args):
    if args.benchmark == "tpch":
        schema = tpch_schema(args.scale)
        spec = tpch_generator_spec(args.scale)
    else:
        schema = tpcds_schema(args.scale)
        spec = tpcds_generator_spec(args.scale)
    database = Database.generate(schema, spec, seed=args.seed)
    statistics = database.build_statistics(sample_size=args.stats_sample, seed=args.seed)
    return schema, database, statistics


def _build_catalog(args) -> Catalog:
    schema, database, statistics = _build_environment(args)
    return Catalog(schema, statistics=statistics, database=database)


def _add_env_arguments(parser):
    parser.add_argument(
        "--benchmark", choices=("tpch", "tpcds"), default="tpch",
        help="synthetic environment to generate (default: tpch)",
    )
    parser.add_argument("--scale", type=float, default=0.003, help="scale factor")
    parser.add_argument("--seed", type=int, default=42, help="data generation seed")
    parser.add_argument(
        "--stats-sample", type=int, default=2000,
        help="rows sampled per column for optimizer statistics",
    )


def _cmd_schema(args) -> int:
    schema, database, _ = _build_environment(args)
    print(f"schema {schema.name}:")
    for name in schema.table_names:
        table = schema.table(name)
        print(
            f"  {name:<22} rows={table.row_count:<10} pages={table.pages:<7} "
            f"columns={', '.join(table.column_names)}"
        )
    print(f"foreign keys: {len(schema.foreign_keys)}")
    return 0


def _cmd_explain(args) -> int:
    catalog = _build_catalog(args)
    optimizer = catalog.optimizer()
    query = parse_query(args.sql, catalog.schema)
    result = optimizer.optimize(query)
    assignment = optimizer.estimated_assignment(query)
    print(query.describe())
    print()
    print(explain_plan(result.plan, catalog.schema, optimizer.cost_model, assignment))
    return 0


def _cmd_compile(args) -> int:
    catalog = _build_catalog(args)
    tracer = _session_tracer(args)
    config = BouquetConfig(
        ratio=args.ratio,
        lambda_=args.anorexic_lambda,
        resolution=args.resolution,
        compile_engine=args.compile_engine,
    )
    compiled = compile_bouquet(args.sql, catalog, config=config, tracer=tracer)
    _finish_trace(tracer, args)
    print(compiled.bouquet.describe())
    if args.validate:
        report = validate_bouquet(compiled.bouquet, check_optimized=True, sample=8)
        print(report.describe())
        if not report.ok:
            return 1
    if args.save:
        compiled.save(args.save)
        print(f"saved bouquet to {args.save}")
    return 0


def _cmd_advise(args) -> int:
    schema, database, statistics = _build_environment(args)
    query = parse_query(args.sql, schema)
    recommendation = recommend_processing_mode(
        query,
        statistics,
        read_only=not args.update,
        latency_sensitive=args.latency_sensitive,
    )
    print(query.describe())
    print()
    print(recommendation.describe())
    return 0


def _cmd_run(args) -> int:
    catalog = _build_catalog(args)
    tracer = _session_tracer(args)
    if args.load:
        compiled = CompiledBouquet.load(args.load, catalog, query=args.sql)
    else:
        config = BouquetConfig(
            resolution=args.resolution, compile_engine=args.compile_engine
        )
        compiled = compile_bouquet(args.sql, catalog, config=config, tracer=tracer)
    request = ServeRequest(
        query=args.sql, mode=args.mode, crossing=args.crossing
    )
    result = api_execute(compiled, catalog.database, request=request, tracer=tracer)
    _finish_trace(tracer, args)
    for record in result.executions:
        kind = "spilled" if record.spilled else "full"
        status = "completed" if record.completed else "budget-killed"
        print(
            f"IC{record.contour_index}: P{record.plan_id} ({kind}) "
            f"spent {record.cost_spent:.1f}/{record.budget:.1f} — {status}"
        )
    summary = (
        f"result: {result.result_rows} rows, total cost {result.total_cost:.1f}"
    )
    if result.elapsed_cost is not None and result.crossing != "sequential":
        summary += f" (elapsed {result.elapsed_cost:.1f}, {result.crossing})"
    summary += (
        f", {result.execution_count} executions "
        f"(guaranteed MSO <= {compiled.mso_bound:.1f})"
    )
    print(summary)
    return 0


def _cmd_refresh(args) -> int:
    from .drift import (
        bouquets_equal,
        patch_compiled,
        perturb_statistics,
        statistics_delta,
    )

    schema, _database, statistics = _build_environment(args)
    # Statistics-only catalog (the ETL scenario): the base assignment is
    # estimated, so statistics drift actually moves the compile inputs.
    catalog = Catalog(schema, statistics=statistics)
    tracer = _session_tracer(args)
    config = BouquetConfig(resolution=args.resolution)
    compiled = compile_bouquet(args.sql, catalog, config=config, tracer=tracer)
    print(
        f"compiled: |B|={compiled.bouquet.cardinality} over "
        f"{compiled.space.size} ESS locations"
    )

    table, _, column = args.perturb.partition(".")
    new_statistics = perturb_statistics(
        statistics,
        table,
        column or None,
        scale=args.perturb_scale,
        distinct_scale=args.distinct_scale,
    )
    delta = statistics_delta(statistics, new_statistics)
    print(delta.describe())
    moved = delta.moved_pids(compiled.query)
    print(f"moved predicates: {', '.join(moved) or 'none'}")
    catalog.statistics = new_statistics

    if args.delta:
        outcome = patch_compiled(compiled, catalog, tracer=tracer)
        refreshed = outcome.compiled
        print(outcome.result.describe())
    else:
        refreshed = compile_bouquet(args.sql, catalog, config=config, tracer=tracer)
        print(
            f"full recompile: planned {refreshed.space.size}/"
            f"{refreshed.space.size} locations"
        )
    print(refreshed.bouquet.describe())

    status = 0
    if args.verify:
        reference = compile_bouquet(args.sql, catalog, config=config)
        problems = bouquets_equal(refreshed.bouquet, reference.bouquet)
        if problems:
            print("verify: MISMATCH vs full recompile:")
            for problem in problems:
                print(f"  - {problem}")
            status = 1
        else:
            print("verify: bit-identical to a full recompile")
    _finish_trace(tracer, args)
    return status


def _cmd_trace(args) -> int:
    try:
        records = read_trace(args.file)
    except (OSError, ValueError) as exc:  # unreadable file or corrupt JSONL
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(summarize_trace(records).describe())
    return 0


def _cmd_serve_stats(args) -> int:
    try:
        records = read_trace(args.file)
    except (OSError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(summarize_serving(records).describe())
    return 0


def _cmd_serve_smoke(args) -> int:
    from .bench.serving import run_serve_smoke
    from .obs import JsonlSink as _JsonlSink

    tracer = None
    if args.trace:
        tracer = Tracer(_JsonlSink(args.trace))
    report = run_serve_smoke(
        scale=args.scale,
        seed=args.seed,
        stats_sample=args.stats_sample,
        resolution=args.resolution,
        store_root=args.store,
        min_speedup=args.min_speedup,
        tracer=tracer,
    )
    if tracer is not None:
        tracer.close()
        print(f"trace written to {args.trace}")
    print(report.describe())
    return 0 if report.ok else 1


def _cmd_serve(args) -> int:
    import asyncio

    from .runtime import AsyncioRuntime
    from .serve import (
        BouquetArtifactStore,
        BouquetFrontEnd,
        BouquetServer,
        ServeGateway,
        TenantQuota,
    )

    catalog = _build_catalog(args)
    tracer = _session_tracer(args)
    if not tracer.enabled:
        # /v1/stats reports live counters; a long-running server should
        # never be blind just because --trace wasn't given.
        from .obs import MemorySink

        tracer = Tracer(MemorySink())
    config = BouquetConfig(
        resolution=args.resolution,
        compile_engine=args.compile_engine,
        template=not args.no_template,
    )
    store = BouquetArtifactStore(root=args.store, tracer=tracer)
    runtime = AsyncioRuntime(max_workers=args.workers)
    quota = TenantQuota(
        rate=args.quota_rate, burst=args.quota_burst, max_queue=args.quota_queue
    )
    with BouquetServer(
        catalog, config=config, store=store, tracer=tracer
    ) as server:
        gateway = ServeGateway(
            server, runtime=runtime, default_quota=quota, tracer=tracer
        )
        front = BouquetFrontEnd(
            gateway, host=args.host, port=args.port, runtime=runtime
        )

        async def _run() -> None:
            host, port = await front.start()
            print(
                f"serving on http://{host}:{port} "
                "(POST /v1/serve, GET /v1/stats, GET /healthz; Ctrl-C stops)"
            )
            try:
                await asyncio.Event().wait()
            finally:
                await front.stop()

        try:
            asyncio.run(_run())
        except KeyboardInterrupt:
            print("shutting down")
    runtime.shutdown()
    _finish_trace(tracer, args)
    return 0


def _cmd_fuzz(args) -> int:
    from .bench.workload import main as fuzz_main

    argv = [
        "--benchmark", args.benchmark,
        "--count", str(args.count),
        "--seed", str(args.seed),
        "--scale", str(args.scale),
        "--data-seed", str(args.data_seed),
        "--stats-sample", str(args.stats_sample),
        "--max-joins", str(args.max_joins),
        "--max-dims", str(args.max_dims),
        "--workers", str(args.workers),
    ]
    if args.progress:
        argv.append("--progress")
    if args.out:
        argv.extend(["--out", args.out])
    return fuzz_main(argv)


def _cmd_serve_load(args) -> int:
    from .bench.serve_load import main as load_main

    argv = [
        "--sessions", str(args.sessions),
        "--requests", str(args.requests),
        "--workers", str(args.workers),
        "--seed", str(args.seed),
        "--min-concurrent", str(args.min_concurrent),
    ]
    if args.smoke:
        argv.append("--smoke")
    if args.real_server:
        argv.append("--real-server")
    if args.out:
        argv.extend(["--out", args.out])
    return load_main(argv)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Plan bouquets: query processing without selectivity estimation",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_schema = sub.add_parser("schema", help="show the synthetic schema")
    _add_env_arguments(p_schema)
    p_schema.set_defaults(func=_cmd_schema)

    p_explain = sub.add_parser("explain", help="optimize and print a plan")
    _add_env_arguments(p_explain)
    p_explain.add_argument("sql", help="SPJ SQL text")
    p_explain.set_defaults(func=_cmd_explain)

    p_compile = sub.add_parser("compile", help="compile a plan bouquet")
    _add_env_arguments(p_compile)
    p_compile.add_argument("sql", help="SPJ SQL text")
    p_compile.add_argument("--resolution", type=int, default=None)
    p_compile.add_argument("--anorexic-lambda", type=float, default=0.2)
    p_compile.add_argument("--ratio", type=float, default=2.0)
    p_compile.add_argument("--save", metavar="PATH", default=None)
    p_compile.add_argument("--validate", action="store_true")
    p_compile.add_argument(
        "--compile-engine", "--engine", dest="compile_engine",
        choices=("batch", "reference"), default="batch",
        help="POSP compile engine: slab-batched DP (default) or the "
        "one-location-at-a-time reference path (--engine is a "
        "deprecated alias)",
    )
    p_compile.add_argument(
        "--trace", metavar="PATH", default=None,
        help="write a JSONL telemetry trace of the compile phase",
    )
    p_compile.set_defaults(func=_cmd_compile)

    p_advise = sub.add_parser(
        "advise", help="recommend native / re-optimize / bouquet for a query (§8)"
    )
    _add_env_arguments(p_advise)
    p_advise.add_argument("sql", help="SPJ SQL text")
    p_advise.add_argument("--update", action="store_true", help="query writes data")
    p_advise.add_argument("--latency-sensitive", action="store_true")
    p_advise.set_defaults(func=_cmd_advise)

    p_run = sub.add_parser("run", help="execute a query through its bouquet")
    _add_env_arguments(p_run)
    p_run.add_argument("sql", help="SPJ SQL text")
    p_run.add_argument("--load", metavar="PATH", default=None)
    p_run.add_argument("--resolution", type=int, default=None)
    p_run.add_argument(
        "--compile-engine", "--engine", dest="compile_engine",
        choices=("batch", "reference"), default="batch",
        help="POSP compile engine when compiling (ignored with --load; "
        "--engine is a deprecated alias)",
    )
    p_run.add_argument("--mode", choices=("basic", "optimized"), default="optimized")
    p_run.add_argument(
        "--crossing", choices=("sequential", "concurrent", "timesliced"),
        default="sequential",
        help="contour-crossing scheduler (non-sequential strategies imply "
        "the basic driver for non-axis contours)",
    )
    p_run.add_argument(
        "--trace", metavar="PATH", default=None,
        help="write a JSONL telemetry trace of compile + execution",
    )
    p_run.set_defaults(func=_cmd_run)

    p_refresh = sub.add_parser(
        "refresh",
        help="refresh a compiled bouquet after injected statistics drift",
    )
    _add_env_arguments(p_refresh)
    p_refresh.add_argument("sql", help="SPJ SQL text")
    p_refresh.add_argument("--resolution", type=int, default=None)
    p_refresh.add_argument(
        "--perturb", metavar="TABLE[.COLUMN]", required=True,
        help="statistics target to drift (one table, or one column of it)",
    )
    p_refresh.add_argument(
        "--perturb-scale", type=float, default=1.5,
        help="multiplier applied to the target's value statistics",
    )
    p_refresh.add_argument(
        "--distinct-scale", type=float, default=None,
        help="additionally scale the target's distinct counts (moves joins)",
    )
    p_refresh.add_argument(
        "--delta", action="store_true",
        help="use the delta engine (re-plan only drift-suspect locations) "
        "instead of a full recompile",
    )
    p_refresh.add_argument(
        "--verify", action="store_true",
        help="check the refreshed bouquet bit-for-bit against a full recompile",
    )
    p_refresh.add_argument(
        "--trace", metavar="PATH", default=None,
        help="write a JSONL telemetry trace of the refresh",
    )
    p_refresh.set_defaults(func=_cmd_refresh)

    p_trace = sub.add_parser(
        "trace", help="summarize a JSONL telemetry trace (Table 3-style account)"
    )
    p_trace.add_argument("file", help="trace file written with --trace")
    p_trace.set_defaults(func=_cmd_trace)

    p_sstats = sub.add_parser(
        "serve-stats",
        help="summarize the serving-layer account (cache ladder, coalescing) "
        "of a JSONL trace",
    )
    p_sstats.add_argument("file", help="trace file written by the serving layer")
    p_sstats.set_defaults(func=_cmd_serve_stats)

    p_smoke = sub.add_parser(
        "serve-smoke",
        help="compile-cache the canned workload twice; fail unless the warm "
        "pass is all cache hits and >= 5x faster",
    )
    p_smoke.add_argument("--scale", type=float, default=0.002)
    p_smoke.add_argument("--seed", type=int, default=7)
    p_smoke.add_argument("--stats-sample", type=int, default=800)
    p_smoke.add_argument("--resolution", type=int, default=32)
    p_smoke.add_argument(
        "--store", metavar="DIR", default=None,
        help="artifact store directory (default: memory-only)",
    )
    p_smoke.add_argument("--min-speedup", type=float, default=5.0)
    p_smoke.add_argument(
        "--trace", metavar="PATH", default=None,
        help="write the serving telemetry as a JSONL trace",
    )
    p_smoke.set_defaults(func=_cmd_serve_smoke)

    p_serve = sub.add_parser(
        "serve",
        help="run the asyncio HTTP/JSON serving front-end (v1 envelope "
        "protocol) over a synthetic environment",
    )
    _add_env_arguments(p_serve)
    p_serve.add_argument("--host", default="127.0.0.1")
    p_serve.add_argument("--port", type=int, default=8751)
    p_serve.add_argument("--resolution", type=int, default=None)
    p_serve.add_argument(
        "--compile-engine", "--engine", dest="compile_engine",
        choices=("batch", "reference"), default="batch",
        help="POSP compile engine (--engine is a deprecated alias)",
    )
    p_serve.add_argument(
        "--store", metavar="DIR", default=None,
        help="artifact store directory (default: memory-only)",
    )
    p_serve.add_argument("--workers", type=int, default=8)
    p_serve.add_argument(
        "--no-template", action="store_true",
        help="disable the cross-query template cache tier (every miss "
        "compiles from scratch instead of rebinding a shared template)",
    )
    p_serve.add_argument(
        "--quota-rate", type=float, default=200.0,
        help="per-tenant sustained requests/second",
    )
    p_serve.add_argument(
        "--quota-burst", type=float, default=50.0,
        help="per-tenant instantaneous burst headroom",
    )
    p_serve.add_argument(
        "--quota-queue", type=int, default=64,
        help="per-tenant in-flight queue slots",
    )
    p_serve.add_argument(
        "--trace", metavar="PATH", default=None,
        help="write the serving telemetry as a JSONL trace",
    )
    p_serve.set_defaults(func=_cmd_serve)

    p_fuzz = sub.add_parser(
        "fuzz",
        help="fuzz the pipeline with generated queries: random acyclic SPJ "
        "workloads, per-query sensitivity-chosen ESS dimensions, every "
        "measured MSO checked against the 4(1+lambda)rho bound",
    )
    p_fuzz.add_argument(
        "--benchmark", choices=("tpch", "tpcds"), default="tpch",
        help="synthetic environment to fuzz over (default: tpch)",
    )
    p_fuzz.add_argument(
        "--count", type=int, default=200,
        help="number of generated queries (default 200)",
    )
    p_fuzz.add_argument(
        "--seed", type=int, default=42,
        help="the campaign seed: pins the query stream end to end; the same "
        "seed replays the identical campaign (recorded in the JSON report)",
    )
    p_fuzz.add_argument("--scale", type=float, default=0.003, help="scale factor")
    p_fuzz.add_argument(
        "--data-seed", type=int, default=7, help="data generation seed"
    )
    p_fuzz.add_argument(
        "--stats-sample", type=int, default=1500,
        help="rows sampled per column for optimizer statistics",
    )
    p_fuzz.add_argument(
        "--max-joins", type=int, default=4,
        help="largest join-tree size sampled per query",
    )
    p_fuzz.add_argument(
        "--max-dims", type=int, default=3,
        help="ESS dimensions kept per query by sensitivity ranking",
    )
    p_fuzz.add_argument(
        "--workers", type=int, default=1, help="campaign shards (processes)"
    )
    p_fuzz.add_argument(
        "--progress", action="store_true", help="print one line per fuzzed query"
    )
    p_fuzz.add_argument(
        "--out", metavar="PATH", default=None,
        help="write the BENCH_workload.json payload here",
    )
    p_fuzz.set_defaults(func=_cmd_fuzz)

    p_load = sub.add_parser(
        "serve-load",
        help="replay concurrent sessions against the serving front-end "
        "and gate on zero silent drops",
    )
    p_load.add_argument("--sessions", type=int, default=2400)
    p_load.add_argument("--requests", type=int, default=3)
    p_load.add_argument("--workers", type=int, default=48)
    p_load.add_argument("--seed", type=int, default=42)
    p_load.add_argument("--min-concurrent", type=int, default=2000)
    p_load.add_argument(
        "--smoke", action="store_true",
        help="simulated mode only (the fast CI gate)",
    )
    p_load.add_argument(
        "--real-server", action="store_true",
        help="also run the asyncio pass against a genuine BouquetServer",
    )
    p_load.add_argument(
        "--out", metavar="PATH", default=None,
        help="write the BENCH_serve.json payload here",
    )
    p_load.set_defaults(func=_cmd_serve_load)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
