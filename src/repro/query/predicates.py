"""Predicate objects for SPJ queries.

Every predicate carries a stable identifier (``pid``) that is the anchor
for selectivity handling throughout the system: the estimator reports a
selectivity per pid, injection overrides are keyed by pid, and ESS
dimensions name the pid whose selectivity is error-prone.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from ..exceptions import QueryError

_RANGE_OPS = ("<", "<=", ">", ">=")
_ALL_OPS = _RANGE_OPS + ("=", "in")


@dataclass(frozen=True)
class SelectionPredicate:
    """A base-relation filter ``table.column <op> value``.

    ``op`` is one of ``= < <= > >= in``; for ``in`` the value is a tuple
    of constants (normalized to a sorted tuple so the pid is stable).
    """

    table: str
    column: str
    op: str
    value: object

    def __post_init__(self):
        if self.op not in _ALL_OPS:
            raise QueryError(f"unsupported selection operator {self.op!r}")
        if self.op == "in":
            values = tuple(sorted(float(v) for v in self.value))
            if not values:
                raise QueryError("IN-list predicate needs at least one value")
            object.__setattr__(self, "value", values)
        else:
            object.__setattr__(self, "value", float(self.value))

    @property
    def pid(self) -> str:
        if self.op == "in":
            inner = ",".join(f"{v:g}" for v in self.value)
            return f"sel:{self.table}.{self.column}in({inner})"
        return f"sel:{self.table}.{self.column}{self.op}{self.value:g}"

    @property
    def is_range(self) -> bool:
        return self.op in _RANGE_OPS

    @property
    def indexable(self) -> bool:
        """True when a B-tree index scan can serve this predicate."""
        return self.op != "in"

    def __str__(self):
        if self.op == "in":
            inner = ", ".join(f"{v:g}" for v in self.value)
            return f"{self.table}.{self.column} in ({inner})"
        return f"{self.table}.{self.column} {self.op} {self.value:g}"


@dataclass(frozen=True)
class JoinPredicate:
    """An equi-join ``left_table.left_column = right_table.right_column``.

    The two sides are stored in a canonical (sorted) order so the same
    logical join always produces the same ``pid`` regardless of how the
    query author wrote it.
    """

    left_table: str
    left_column: str
    right_table: str
    right_column: str

    def __post_init__(self):
        if self.left_table == self.right_table:
            raise QueryError("self-joins are not supported")
        if (self.right_table, self.right_column) < (self.left_table, self.left_column):
            # Swap the two sides into canonical order.  The dataclass is
            # frozen, so normalization goes through object.__setattr__.
            lt, lc = self.left_table, self.left_column
            rt, rc = self.right_table, self.right_column
            object.__setattr__(self, "left_table", rt)
            object.__setattr__(self, "left_column", rc)
            object.__setattr__(self, "right_table", lt)
            object.__setattr__(self, "right_column", lc)

    @property
    def pid(self) -> str:
        return (
            f"join:{self.left_table}.{self.left_column}"
            f"={self.right_table}.{self.right_column}"
        )

    @property
    def tables(self) -> Tuple[str, str]:
        return (self.left_table, self.right_table)

    def column_for(self, table: str) -> str:
        """The join column on ``table``'s side."""
        if table == self.left_table:
            return self.left_column
        if table == self.right_table:
            return self.right_column
        raise QueryError(f"join {self.pid} does not involve table {table!r}")

    def other(self, table: str) -> str:
        """The table on the opposite side of ``table``."""
        if table == self.left_table:
            return self.right_table
        if table == self.right_table:
            return self.left_table
        raise QueryError(f"join {self.pid} does not involve table {table!r}")

    def __str__(self):
        return (
            f"{self.left_table}.{self.left_column} = "
            f"{self.right_table}.{self.right_column}"
        )
