"""SPJ query objects.

A :class:`Query` is a select-project-join block: a set of base tables,
conjunctive selection predicates, and equi-join predicates whose join
graph must be connected (the optimizer does not consider cross products).
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple, Union

from ..catalog.schema import Schema
from ..exceptions import QueryError
from .joingraph import JoinGraph
from .predicates import JoinPredicate, SelectionPredicate

Predicate = Union[SelectionPredicate, JoinPredicate]


class Query:
    """A conjunctive SPJ query over a schema.

    Parameters
    ----------
    name:
        Identifier used in reports (e.g. ``"EQ"`` or ``"3D_H_Q5"``).
    schema:
        The catalog the query runs against; all references are validated.
    tables:
        Base relations in the FROM clause.
    selections / joins:
        Conjunctive predicates.
    """

    def __init__(
        self,
        name: str,
        schema: Schema,
        tables: Sequence[str],
        selections: Sequence[SelectionPredicate] = (),
        joins: Sequence[JoinPredicate] = (),
        group_by: Sequence[Tuple[str, str]] = (),
        aggregate: bool = False,
    ):
        self.name = name
        self.schema = schema
        self.tables: Tuple[str, ...] = tuple(tables)
        if len(set(self.tables)) != len(self.tables):
            raise QueryError(f"query {name!r} lists a table twice")
        self.selections: Tuple[SelectionPredicate, ...] = tuple(selections)
        self.joins: Tuple[JoinPredicate, ...] = tuple(joins)
        self.group_by: Tuple[Tuple[str, str], ...] = tuple(
            (table, column) for table, column in group_by
        )
        #: True when the query computes COUNT(*) (grouped or global).
        self.aggregate = bool(aggregate or self.group_by)
        self._validate()
        self.join_graph = JoinGraph(self.tables, self.joins)
        if len(self.tables) > 1 and not self.join_graph.is_connected():
            raise QueryError(f"query {name!r} has a disconnected join graph")
        self._by_pid: Dict[str, Predicate] = {}
        for pred in list(self.selections) + list(self.joins):
            if pred.pid in self._by_pid:
                raise QueryError(f"duplicate predicate {pred.pid!r} in query {name!r}")
            self._by_pid[pred.pid] = pred

    def _validate(self):
        table_set = set(self.tables)
        for sel in self.selections:
            if sel.table not in table_set:
                raise QueryError(
                    f"selection {sel} references table outside query {self.name!r}"
                )
            self.schema.table(sel.table).column(sel.column)
        for join in self.joins:
            for side in join.tables:
                if side not in table_set:
                    raise QueryError(
                        f"join {join} references table outside query {self.name!r}"
                    )
            self.schema.table(join.left_table).column(join.left_column)
            self.schema.table(join.right_table).column(join.right_column)
        for table, column in self.group_by:
            if table not in table_set:
                raise QueryError(
                    f"group-by column {table}.{column} outside query {self.name!r}"
                )
            self.schema.table(table).column(column)

    # ------------------------------------------------------------------

    def predicate(self, pid: str) -> Predicate:
        """Look up a predicate by its stable id."""
        try:
            return self._by_pid[pid]
        except KeyError:
            raise QueryError(f"query {self.name!r} has no predicate {pid!r}") from None

    @property
    def predicate_ids(self) -> List[str]:
        return sorted(self._by_pid)

    def selections_on(self, table: str) -> List[SelectionPredicate]:
        return [sel for sel in self.selections if sel.table == table]

    def joins_on(self, table: str) -> List[JoinPredicate]:
        return [join for join in self.joins if table in join.tables]

    def is_pk_fk_join(self, join: JoinPredicate) -> bool:
        """True if the join follows a declared foreign-key edge."""
        fk = self.schema.foreign_key_between(
            join.left_table, join.left_column, join.right_table, join.right_column
        )
        return fk is not None

    @property
    def fingerprint(self) -> str:
        """Structural identity: name, tables, and every predicate.

        Used by the optimizer's per-query caches so two distinct queries
        that happen to share a name never collide."""
        groups = ",".join(f"{t}.{c}" for t, c in self.group_by)
        return "|".join(
            [
                self.name,
                ",".join(sorted(self.tables)),
                ";".join(self.predicate_ids),
                groups,
            ]
        )

    def describe(self) -> str:
        parts = [f"Query {self.name}: FROM {', '.join(self.tables)}"]
        if self.joins:
            parts.append("  joins: " + "; ".join(str(j) for j in self.joins))
        if self.selections:
            parts.append("  filters: " + "; ".join(str(s) for s in self.selections))
        if self.group_by:
            groups = ", ".join(f"{t}.{c}" for t, c in self.group_by)
            parts.append(f"  group by: {groups}")
        parts.append(f"  geometry: {self.join_graph.describe()}")
        return "\n".join(parts)

    def __repr__(self):
        return f"Query({self.name!r}, tables={list(self.tables)})"
