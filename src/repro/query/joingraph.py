"""Join-graph construction and geometry classification.

The paper's Table 2 classifies workload queries by join-graph geometry
(chain, star, branch) and relation count; this module provides that
classification plus the connectivity checks the optimizer's join
enumeration relies on.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, FrozenSet, Iterable, List, Sequence, Set, Tuple

from ..exceptions import QueryError
from .predicates import JoinPredicate


class JoinGraph:
    """Undirected graph over the query's tables, edges = join predicates."""

    def __init__(self, tables: Sequence[str], joins: Sequence[JoinPredicate]):
        self.tables: Tuple[str, ...] = tuple(tables)
        self.joins: Tuple[JoinPredicate, ...] = tuple(joins)
        table_set = set(self.tables)
        self._adjacency: Dict[str, Set[str]] = {t: set() for t in self.tables}
        self._edges: Dict[FrozenSet[str], List[JoinPredicate]] = defaultdict(list)
        for join in self.joins:
            left, right = join.tables
            if left not in table_set or right not in table_set:
                raise QueryError(
                    f"join {join} references a table outside the query"
                )
            self._adjacency[left].add(right)
            self._adjacency[right].add(left)
            self._edges[frozenset((left, right))].append(join)

    def neighbors(self, table: str) -> Set[str]:
        return set(self._adjacency[table])

    def degree(self, table: str) -> int:
        return len(self._adjacency[table])

    def edges_between(self, left: str, right: str) -> List[JoinPredicate]:
        return list(self._edges.get(frozenset((left, right)), []))

    def joins_connecting(
        self, group_a: Iterable[str], group_b: Iterable[str]
    ) -> List[JoinPredicate]:
        """All join predicates with one side in each group."""
        set_a, set_b = set(group_a), set(group_b)
        result = []
        for join in self.joins:
            left, right = join.tables
            if (left in set_a and right in set_b) or (left in set_b and right in set_a):
                result.append(join)
        return result

    def is_connected(self, subset: Iterable[str] = None) -> bool:
        """True if the induced subgraph on ``subset`` (default: all) is connected."""
        nodes = set(self.tables) if subset is None else set(subset)
        if not nodes:
            return False
        start = next(iter(nodes))
        seen = {start}
        frontier = [start]
        while frontier:
            current = frontier.pop()
            for neighbor in self._adjacency[current]:
                if neighbor in nodes and neighbor not in seen:
                    seen.add(neighbor)
                    frontier.append(neighbor)
        return seen == nodes

    def has_cycle(self) -> bool:
        """True if the join graph (as a simple graph) contains a cycle."""
        simple_edges = len(self._edges)
        if not self.is_connected():
            # Count per component: a forest has edges = nodes - components.
            components = self._component_count()
            return simple_edges > len(self.tables) - components
        return simple_edges > len(self.tables) - 1

    def _component_count(self) -> int:
        remaining = set(self.tables)
        count = 0
        while remaining:
            count += 1
            start = next(iter(remaining))
            stack = [start]
            remaining.discard(start)
            while stack:
                node = stack.pop()
                for neighbor in self._adjacency[node]:
                    if neighbor in remaining:
                        remaining.discard(neighbor)
                        stack.append(neighbor)
        return count

    def geometry(self) -> str:
        """Classify the join graph: chain, star, branch, cycle, or single.

        * ``single`` — one relation, no joins.
        * ``chain``  — a simple path.
        * ``star``   — one hub joined to all other (degree-1) relations.
        * ``branch`` — any other tree (a tree with an internal branching node).
        * ``cycle``  — contains a cycle.
        """
        if len(self.tables) == 1:
            return "single"
        if not self.is_connected():
            raise QueryError("join graph is disconnected")
        if self.has_cycle():
            return "cycle"
        degrees = sorted(self.degree(t) for t in self.tables)
        if degrees[-1] <= 2:
            return "chain"
        hub_count = sum(1 for d in degrees if d > 1)
        if hub_count == 1:
            return "star"
        return "branch"

    def describe(self) -> str:
        """Human-readable geometry string, e.g. ``chain(6)``."""
        return f"{self.geometry()}({len(self.tables)})"
