"""A tiny SQL front-end for the SPJ fragment the system supports.

Grammar (case-insensitive keywords)::

    SELECT * | SELECT COUNT(*)
    FROM table [, table ...]
    [WHERE conjunct [AND conjunct ...]]
    [GROUP BY t.c [, t.c ...]]

where each conjunct is an equi-join ``t1.c1 = t2.c2``, a selection
``t.c <op> literal`` with ``<op>`` in ``= < <= > >=``, or an IN-list
``t.c IN (v1, v2, ...)``.
Unqualified column names are resolved against the FROM tables when
unambiguous.  This is exactly the fragment of the paper's workload
(Figure 1's EQ query parses verbatim).

:func:`render_sql` is the inverse: it prints a :class:`Query` back into
this fragment losslessly (``repr``-precision constants, canonical
predicate ordering), so generated queries (:mod:`repro.wlgen`) can be
persisted as plain SQL and replayed bit-for-bit.
"""

from __future__ import annotations

import re
from typing import List, Optional, Tuple

from ..catalog.schema import Schema
from ..exceptions import QueryError
from .predicates import JoinPredicate, SelectionPredicate
from .query import Query

_SQL_RE = re.compile(
    r"^\s*select\s+(?P<select>\*|count\(\s*\*\s*\))\s+"
    r"from\s+(?P<tables>[^;]+?)"
    r"(?:\s+where\s+(?P<where>.+?))?"
    r"(?:\s+group\s+by\s+(?P<group>[^;]+?))?\s*;?\s*$",
    re.IGNORECASE | re.DOTALL,
)

_COLUMN_REF = re.compile(r"^(?:(?P<table>\w+)\.)?(?P<column>\w+)$")

_OPERATORS = ("<=", ">=", "=", "<", ">")


def parse_query(sql: str, schema: Schema, name: str = "sql_query") -> Query:
    """Parse an SPJ SQL string into a :class:`~repro.query.query.Query`.

    Raises :class:`~repro.exceptions.QueryError` with a precise message on
    anything outside the supported fragment.
    """
    match = _SQL_RE.match(sql)
    if match is None:
        raise QueryError(
            "unsupported SQL; expected SELECT */COUNT(*) FROM ... [WHERE ...]"
        )
    tables = [t.strip() for t in match.group("tables").split(",")]
    if any(not re.fullmatch(r"\w+", t) for t in tables):
        raise QueryError(f"malformed FROM list: {match.group('tables')!r}")
    for table in tables:
        schema.table(table)  # validates existence

    selections: List[SelectionPredicate] = []
    joins: List[JoinPredicate] = []
    where = match.group("where")
    if where:
        for conjunct in re.split(r"\s+and\s+", where.strip(), flags=re.IGNORECASE):
            _parse_conjunct(conjunct.strip(), schema, tables, selections, joins)
    group_by = []
    group_clause = match.group("group")
    if group_clause:
        for token in group_clause.split(","):
            ref = _COLUMN_REF.match(token.strip())
            if ref is None:
                raise QueryError(f"malformed GROUP BY column {token.strip()!r}")
            group_by.append(_resolve(ref, schema, tables, group_clause))
    is_count = match.group("select").lower().startswith("count")
    return Query(
        name,
        schema,
        tables,
        selections=selections,
        joins=joins,
        group_by=group_by,
        aggregate=is_count or bool(group_by),
    )


_IN_RE = re.compile(
    r"^(?P<col>(?:\w+\.)?\w+)\s+in\s*\((?P<values>[^)]*)\)$", re.IGNORECASE
)


def _parse_conjunct(
    text: str,
    schema: Schema,
    tables: List[str],
    selections: List[SelectionPredicate],
    joins: List[JoinPredicate],
):
    in_match = _IN_RE.match(text)
    if in_match is not None:
        ref = _COLUMN_REF.match(in_match.group("col"))
        if ref is None:
            raise QueryError(f"malformed IN predicate {text!r}")
        values = []
        for token in in_match.group("values").split(","):
            literal = _try_literal(token.strip())
            if literal is None:
                raise QueryError(f"non-numeric IN-list value in {text!r}")
            values.append(literal)
        table, column = _resolve(ref, schema, tables, text)
        selections.append(SelectionPredicate(table, column, "in", tuple(values)))
        return
    op, left, right = _split_comparison(text)
    left_ref = _COLUMN_REF.match(left)
    if left_ref is None:
        raise QueryError(f"left side of {text!r} is not a column reference")
    literal = _try_literal(right)
    if literal is not None:
        table, column = _resolve(left_ref, schema, tables, text)
        selections.append(SelectionPredicate(table, column, op, literal))
        return
    right_ref = _COLUMN_REF.match(right)
    if right_ref is None:
        raise QueryError(f"right side of {text!r} is neither literal nor column")
    if op != "=":
        raise QueryError(f"non-equi join {text!r} is not supported")
    lt, lc = _resolve(left_ref, schema, tables, text)
    rt, rc = _resolve(right_ref, schema, tables, text)
    joins.append(JoinPredicate(lt, lc, rt, rc))


def _split_comparison(text: str) -> Tuple[str, str, str]:
    for op in _OPERATORS:
        if op in text:
            left, _, right = text.partition(op)
            return op, left.strip(), right.strip()
    raise QueryError(f"no comparison operator in conjunct {text!r}")


def _try_literal(token: str) -> Optional[float]:
    try:
        return float(token)
    except ValueError:
        return None


# ---------------------------------------------------------------------------
# Rendering (the parser's inverse)
# ---------------------------------------------------------------------------


def _render_literal(value: float) -> str:
    """Render a numeric constant so ``float(text) == value`` exactly.

    ``repr`` round-trips every IEEE double (shortest such decimal), which
    is what makes render -> parse lossless; the ``%g``-style truncation
    used for pid display is *not* safe here.
    """
    return repr(float(value))


def render_sql(query: Query) -> str:
    """Render a :class:`Query` into the SPJ SQL fragment, canonically.

    The output is stable for structurally identical queries: FROM keeps
    the query's table order, WHERE lists joins then selections, each
    class sorted by its stable pid, and constants are rendered at full
    ``repr`` precision.  ``parse_query(render_sql(q), q.schema)``
    reproduces ``q`` exactly (same tables, same predicate pids, same
    group-by and aggregate flag) up to the query name.
    """
    select = "COUNT(*)" if query.aggregate else "*"
    parts = [f"SELECT {select} FROM {', '.join(query.tables)}"]
    conjuncts: List[str] = []
    for join in sorted(query.joins, key=lambda j: j.pid):
        conjuncts.append(
            f"{join.left_table}.{join.left_column} = "
            f"{join.right_table}.{join.right_column}"
        )
    for sel in sorted(query.selections, key=lambda s: s.pid):
        if sel.op == "in":
            inner = ", ".join(_render_literal(v) for v in sel.value)
            conjuncts.append(f"{sel.table}.{sel.column} IN ({inner})")
        else:
            conjuncts.append(
                f"{sel.table}.{sel.column} {sel.op} {_render_literal(sel.value)}"
            )
    if conjuncts:
        parts.append("WHERE " + " AND ".join(conjuncts))
    if query.group_by:
        groups = ", ".join(f"{t}.{c}" for t, c in query.group_by)
        parts.append(f"GROUP BY {groups}")
    return " ".join(parts)


def _resolve(
    ref: "re.Match", schema: Schema, tables: List[str], context: str
) -> Tuple[str, str]:
    """Resolve a (possibly unqualified) column reference to (table, column)."""
    table = ref.group("table")
    column = ref.group("column")
    if table is not None:
        if table not in tables:
            raise QueryError(f"table {table!r} in {context!r} not in FROM list")
        schema.table(table).column(column)
        return table, column
    owners = [t for t in tables if schema.table(t).has_column(column)]
    if not owners:
        raise QueryError(f"column {column!r} in {context!r} not found in FROM tables")
    if len(owners) > 1:
        raise QueryError(
            f"column {column!r} in {context!r} is ambiguous across {owners}"
        )
    return owners[0], column
