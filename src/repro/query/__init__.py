"""Query representation: predicates, SPJ queries, join graphs, SQL."""

from .joingraph import JoinGraph
from .predicates import JoinPredicate, SelectionPredicate
from .query import Query
from .sql import parse_query, render_sql

__all__ = [
    "JoinGraph",
    "JoinPredicate",
    "SelectionPredicate",
    "Query",
    "parse_query",
    "render_sql",
]
