"""The paper's query workload (Table 2) plus the special instances.

Queries are structurally faithful SPJ skeletons of the cited TPC-H /
TPC-DS queries: same join-graph geometry (chain/star/branch), same
relation counts, and the same number of error-prone (join) selectivity
dimensions.  Naming follows the paper: ``xD_y_Qz`` = x error dimensions,
benchmark y (H or DS), query z.

Extra instances: ``EQ`` (the running 1D example of Figures 1-4),
``2D_H_Q8a`` (the Table 3 run-time experiment) and ``3D_H_Q5b`` /
``4D_H_Q8b`` (selection-dimension variants for the commercial-engine
experiment of §6.8).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from ..catalog.schema import Schema
from ..ess.space import ErrorDimension
from ..exceptions import QueryError
from .predicates import JoinPredicate, SelectionPredicate
from .query import Query

#: Default selectivity range (in decades below the legal maximum) for
#: error-prone join dimensions.
JOIN_DIM_DECADES = 3.0

#: Default range for error-prone selection dimensions.
SELECTION_DIM_RANGE = (1e-4, 1.0)


@dataclass
class WorkloadQuery:
    """A benchmark query plus its error-dimension specification."""

    name: str
    query: Query
    dim_pids: List[str]
    expected_geometry: str

    def __post_init__(self):
        actual = self.query.join_graph.describe()
        if actual != self.expected_geometry:
            raise QueryError(
                f"{self.name}: join graph is {actual}, expected {self.expected_geometry}"
            )
        for pid in self.dim_pids:
            self.query.predicate(pid)

    @property
    def dimensionality(self) -> int:
        return len(self.dim_pids)

    def dimensions(self, decades: float = JOIN_DIM_DECADES) -> List[ErrorDimension]:
        """Error dimensions with schematically-legal selectivity ranges.

        For a PK-FK join the maximum legal selectivity is the reciprocal
        of the PK relation's cardinality (§4.1); the range spans
        ``decades`` orders of magnitude below that.  Selection dimensions
        span :data:`SELECTION_DIM_RANGE`.
        """
        dims = []
        schema = self.query.schema
        for pid in self.dim_pids:
            pred = self.query.predicate(pid)
            if isinstance(pred, JoinPredicate):
                hi = join_dim_maximum(schema, pred)
                lo = hi / (10.0 ** decades)
                label = f"{pred.left_table}x{pred.right_table}"
            else:
                lo, hi = SELECTION_DIM_RANGE
                label = f"{pred.table}.{pred.column}"
            dims.append(ErrorDimension(pid=pid, lo=lo, hi=hi, label=label))
        return dims


def join_dim_maximum(schema: Schema, pred: JoinPredicate) -> float:
    """Legal maximum join selectivity: 1/|PK relation| for FK joins."""
    fk = schema.foreign_key_between(
        pred.left_table, pred.left_column, pred.right_table, pred.right_column
    )
    if fk is not None:
        return 1.0 / schema.table(fk.parent_table).row_count
    # Non-FK equi-join: bound by the smaller side's cardinality.
    smaller = min(
        schema.table(pred.left_table).row_count,
        schema.table(pred.right_table).row_count,
    )
    return 1.0 / smaller


# ---------------------------------------------------------------------------
# TPC-H workload
# ---------------------------------------------------------------------------


def example_query(schema: Schema) -> WorkloadQuery:
    """EQ — the paper's running example (Figure 1): orders of cheap parts.

    One error-prone dimension: the p_retailprice selection predicate.
    """
    query = Query(
        "EQ",
        schema,
        ["lineitem", "orders", "part"],
        selections=[SelectionPredicate("part", "p_retailprice", "<", 1000.0)],
        joins=[
            JoinPredicate("part", "p_partkey", "lineitem", "l_partkey"),
            JoinPredicate("lineitem", "l_orderkey", "orders", "o_orderkey"),
        ],
    )
    return WorkloadQuery(
        name="EQ",
        query=query,
        dim_pids=[query.selections[0].pid],
        expected_geometry="chain(3)",
    )


def _h_q5(schema: Schema) -> Query:
    """Chain(6): region—nation—customer—orders—lineitem—supplier."""
    return Query(
        "H_Q5",
        schema,
        ["region", "nation", "customer", "orders", "lineitem", "supplier"],
        selections=[SelectionPredicate("region", "r_regionkey", "<=", 3.0)],
        joins=[
            JoinPredicate("nation", "n_regionkey", "region", "r_regionkey"),
            JoinPredicate("customer", "c_nationkey", "nation", "n_nationkey"),
            JoinPredicate("orders", "o_custkey", "customer", "c_custkey"),
            JoinPredicate("lineitem", "l_orderkey", "orders", "o_orderkey"),
            JoinPredicate("lineitem", "l_suppkey", "supplier", "s_suppkey"),
        ],
    )


def _h_q7(schema: Schema) -> Query:
    """Chain(6): region—nation—supplier—lineitem—orders—customer."""
    return Query(
        "H_Q7",
        schema,
        ["region", "nation", "supplier", "lineitem", "orders", "customer"],
        selections=[SelectionPredicate("supplier", "s_acctbal", ">", 0.0)],
        joins=[
            JoinPredicate("nation", "n_regionkey", "region", "r_regionkey"),
            JoinPredicate("supplier", "s_nationkey", "nation", "n_nationkey"),
            JoinPredicate("lineitem", "l_suppkey", "supplier", "s_suppkey"),
            JoinPredicate("lineitem", "l_orderkey", "orders", "o_orderkey"),
            JoinPredicate("orders", "o_custkey", "customer", "c_custkey"),
        ],
    )


def _h_q8(schema: Schema) -> Query:
    """Branch(8): partsupp—part—lineitem—{supplier, orders—customer—nation—region}."""
    return Query(
        "H_Q8",
        schema,
        [
            "partsupp",
            "part",
            "lineitem",
            "supplier",
            "orders",
            "customer",
            "nation",
            "region",
        ],
        selections=[SelectionPredicate("part", "p_size", "<", 20.0)],
        joins=[
            JoinPredicate("partsupp", "ps_partkey", "part", "p_partkey"),
            JoinPredicate("lineitem", "l_partkey", "part", "p_partkey"),
            JoinPredicate("lineitem", "l_suppkey", "supplier", "s_suppkey"),
            JoinPredicate("lineitem", "l_orderkey", "orders", "o_orderkey"),
            JoinPredicate("orders", "o_custkey", "customer", "c_custkey"),
            JoinPredicate("customer", "c_nationkey", "nation", "n_nationkey"),
            JoinPredicate("nation", "n_regionkey", "region", "r_regionkey"),
        ],
    )


def _h_q8a(schema: Schema) -> Query:
    """The 2D run-time instance of §6.7: part—lineitem—orders.

    The two error dimensions are selection selectivities whose actual
    values land near the paper's qa = (33.7%, 45.6%): p_retailprice is
    uniform on [900, 2100] so ``< 1300`` selects ≈33.3%, and o_totalprice
    is uniform on [800, 500000] so ``< 228000`` selects ≈45.5%.
    """
    return Query(
        "H_Q8a",
        schema,
        ["part", "lineitem", "orders"],
        selections=[
            SelectionPredicate("part", "p_retailprice", "<", 1300.0),
            SelectionPredicate("orders", "o_totalprice", "<", 228000.0),
        ],
        joins=[
            JoinPredicate("lineitem", "l_partkey", "part", "p_partkey"),
            JoinPredicate("lineitem", "l_orderkey", "orders", "o_orderkey"),
        ],
    )


def tpch_workload(schema: Schema) -> Dict[str, WorkloadQuery]:
    """The TPC-H side of Table 2 (plus EQ and 2D_H_Q8a)."""
    q5 = _h_q5(schema)
    q7 = _h_q7(schema)
    q8 = _h_q8(schema)
    q8a = _h_q8a(schema)

    def jpid(query: Query, left: str, right: str) -> str:
        for join in query.joins:
            if set(join.tables) == {left, right}:
                return join.pid
        raise QueryError(f"no join between {left} and {right} in {query.name}")

    workload = {
        "EQ": example_query(schema),
        "3D_H_Q5": WorkloadQuery(
            "3D_H_Q5",
            _rename(q5, "3D_H_Q5"),
            [
                jpid(q5, "customer", "nation"),
                jpid(q5, "orders", "customer"),
                jpid(q5, "lineitem", "orders"),
            ],
            "chain(6)",
        ),
        "3D_H_Q7": WorkloadQuery(
            "3D_H_Q7",
            _rename(q7, "3D_H_Q7"),
            [
                jpid(q7, "supplier", "nation"),
                jpid(q7, "lineitem", "supplier"),
                jpid(q7, "orders", "customer"),
            ],
            "chain(6)",
        ),
        "4D_H_Q8": WorkloadQuery(
            "4D_H_Q8",
            _rename(q8, "4D_H_Q8"),
            [
                jpid(q8, "lineitem", "part"),
                jpid(q8, "lineitem", "supplier"),
                jpid(q8, "lineitem", "orders"),
                jpid(q8, "orders", "customer"),
            ],
            "branch(8)",
        ),
        "5D_H_Q7": WorkloadQuery(
            "5D_H_Q7",
            _rename(q7, "5D_H_Q7"),
            [join.pid for join in q7.joins],
            "chain(6)",
        ),
        "2D_H_Q8a": WorkloadQuery(
            "2D_H_Q8a",
            _rename(q8a, "2D_H_Q8a"),
            [sel.pid for sel in q8a.selections],
            "chain(3)",
        ),
    }
    # Selection-dimension variants (dims are the selections themselves),
    # used for the commercial-engine experiment where selectivities can
    # only be steered via query constants (§6.8).
    q5b, q8b = _h_q5b(schema), _h_q8b(schema)
    workload["3D_H_Q5b"] = WorkloadQuery(
        "3D_H_Q5b", q5b, [sel.pid for sel in q5b.selections], "chain(3)"
    )
    workload["4D_H_Q8b"] = WorkloadQuery(
        "4D_H_Q8b", q8b, [sel.pid for sel in q8b.selections], "chain(4)"
    )
    return workload


def _h_q5b(schema: Schema) -> Query:
    """COM-experiment variant: 3 selection dims on base relations."""
    return Query(
        "3D_H_Q5b",
        schema,
        ["customer", "orders", "lineitem"],
        selections=[
            SelectionPredicate("customer", "c_acctbal", ">", 0.0),
            SelectionPredicate("orders", "o_totalprice", "<", 100000.0),
            SelectionPredicate("lineitem", "l_quantity", "<", 25.0),
        ],
        joins=[
            JoinPredicate("orders", "o_custkey", "customer", "c_custkey"),
            JoinPredicate("lineitem", "l_orderkey", "orders", "o_orderkey"),
        ],
    )


def _h_q8b(schema: Schema) -> Query:
    """COM-experiment variant: 4 selection dims on base relations."""
    return Query(
        "4D_H_Q8b",
        schema,
        ["part", "lineitem", "orders", "customer"],
        selections=[
            SelectionPredicate("part", "p_retailprice", "<", 1500.0),
            SelectionPredicate("lineitem", "l_quantity", "<", 30.0),
            SelectionPredicate("orders", "o_totalprice", "<", 200000.0),
            SelectionPredicate("customer", "c_acctbal", ">", -500.0),
        ],
        joins=[
            JoinPredicate("lineitem", "l_partkey", "part", "p_partkey"),
            JoinPredicate("lineitem", "l_orderkey", "orders", "o_orderkey"),
            JoinPredicate("orders", "o_custkey", "customer", "c_custkey"),
        ],
    )


def _rename(query: Query, name: str) -> Query:
    """Clone a query under a workload-specific name."""
    return Query(
        name,
        query.schema,
        query.tables,
        selections=query.selections,
        joins=query.joins,
    )


# ---------------------------------------------------------------------------
# TPC-DS workload
# ---------------------------------------------------------------------------


def _ds_q15(schema: Schema) -> Query:
    """Chain(4): date_dim—catalog_sales—customer—customer_address."""
    return Query(
        "DS_Q15",
        schema,
        ["date_dim", "catalog_sales", "customer", "customer_address"],
        selections=[SelectionPredicate("date_dim", "d_year", "<=", 2000.0)],
        joins=[
            JoinPredicate("catalog_sales", "cs_sold_date_sk", "date_dim", "d_date_sk"),
            JoinPredicate("catalog_sales", "cs_bill_customer_sk", "customer", "c_customer_sk"),
            JoinPredicate("customer", "c_current_addr_sk", "customer_address", "ca_address_sk"),
        ],
    )


def _ds_q96(schema: Schema) -> Query:
    """Star(4): store_sales hub with date_dim, household_demographics, store."""
    return Query(
        "DS_Q96",
        schema,
        ["store_sales", "date_dim", "household_demographics", "store"],
        selections=[SelectionPredicate("household_demographics", "hd_dep_count", "<=", 3.0)],
        joins=[
            JoinPredicate("store_sales", "ss_sold_date_sk", "date_dim", "d_date_sk"),
            JoinPredicate("store_sales", "ss_hdemo_sk", "household_demographics", "hd_demo_sk"),
            JoinPredicate("store_sales", "ss_store_sk", "store", "s_store_sk"),
        ],
    )


def _ds_q7(schema: Schema) -> Query:
    """Star(5): store_sales hub with item, customer_demographics, date_dim, promotion."""
    return Query(
        "DS_Q7",
        schema,
        ["store_sales", "item", "customer_demographics", "date_dim", "promotion"],
        selections=[SelectionPredicate("customer_demographics", "cd_marital_status", "<=", 2.0)],
        joins=[
            JoinPredicate("store_sales", "ss_item_sk", "item", "i_item_sk"),
            JoinPredicate("store_sales", "ss_cdemo_sk", "customer_demographics", "cd_demo_sk"),
            JoinPredicate("store_sales", "ss_sold_date_sk", "date_dim", "d_date_sk"),
            JoinPredicate("store_sales", "ss_promo_sk", "promotion", "p_promo_sk"),
        ],
    )


def _ds_q19(schema: Schema) -> Query:
    """Branch(6): store_sales hub + customer—customer_address spur."""
    return Query(
        "DS_Q19",
        schema,
        ["store_sales", "date_dim", "item", "customer", "customer_address", "store"],
        selections=[SelectionPredicate("item", "i_current_price", "<", 50.0)],
        joins=[
            JoinPredicate("store_sales", "ss_sold_date_sk", "date_dim", "d_date_sk"),
            JoinPredicate("store_sales", "ss_item_sk", "item", "i_item_sk"),
            JoinPredicate("store_sales", "ss_customer_sk", "customer", "c_customer_sk"),
            JoinPredicate("customer", "c_current_addr_sk", "customer_address", "ca_address_sk"),
            JoinPredicate("store_sales", "ss_store_sk", "store", "s_store_sk"),
        ],
    )


def _ds_q26(schema: Schema) -> Query:
    """Star(5): catalog_sales hub with item, customer_demographics, date_dim, promotion."""
    return Query(
        "DS_Q26",
        schema,
        ["catalog_sales", "item", "customer_demographics", "date_dim", "promotion"],
        selections=[SelectionPredicate("customer_demographics", "cd_education_status", "<=", 3.0)],
        joins=[
            JoinPredicate("catalog_sales", "cs_item_sk", "item", "i_item_sk"),
            JoinPredicate("catalog_sales", "cs_bill_cdemo_sk", "customer_demographics", "cd_demo_sk"),
            JoinPredicate("catalog_sales", "cs_sold_date_sk", "date_dim", "d_date_sk"),
            JoinPredicate("catalog_sales", "cs_promo_sk", "promotion", "p_promo_sk"),
        ],
    )


def _ds_q91(schema: Schema) -> Query:
    """Branch(7): catalog_sales and customer both branch."""
    return Query(
        "DS_Q91",
        schema,
        [
            "catalog_sales",
            "call_center",
            "date_dim",
            "customer",
            "customer_address",
            "customer_demographics",
            "household_demographics",
        ],
        selections=[SelectionPredicate("call_center", "cc_employees", ">", 200.0)],
        joins=[
            JoinPredicate("catalog_sales", "cs_call_center_sk", "call_center", "cc_call_center_sk"),
            JoinPredicate("catalog_sales", "cs_sold_date_sk", "date_dim", "d_date_sk"),
            JoinPredicate("catalog_sales", "cs_bill_customer_sk", "customer", "c_customer_sk"),
            JoinPredicate("customer", "c_current_addr_sk", "customer_address", "ca_address_sk"),
            JoinPredicate("customer", "c_current_cdemo_sk", "customer_demographics", "cd_demo_sk"),
            JoinPredicate("customer", "c_current_hdemo_sk", "household_demographics", "hd_demo_sk"),
        ],
    )


def tpcds_workload(schema: Schema) -> Dict[str, WorkloadQuery]:
    """The TPC-DS side of Table 2."""
    q15, q96, q7 = _ds_q15(schema), _ds_q96(schema), _ds_q7(schema)
    q19, q26, q91 = _ds_q19(schema), _ds_q26(schema), _ds_q91(schema)

    def jpid(query: Query, left: str, right: str) -> str:
        for join in query.joins:
            if set(join.tables) == {left, right}:
                return join.pid
        raise QueryError(f"no join between {left} and {right} in {query.name}")

    return {
        "3D_DS_Q15": WorkloadQuery(
            "3D_DS_Q15", _rename(q15, "3D_DS_Q15"), [j.pid for j in q15.joins], "chain(4)"
        ),
        "3D_DS_Q96": WorkloadQuery(
            "3D_DS_Q96", _rename(q96, "3D_DS_Q96"), [j.pid for j in q96.joins], "star(4)"
        ),
        "4D_DS_Q7": WorkloadQuery(
            "4D_DS_Q7", _rename(q7, "4D_DS_Q7"), [j.pid for j in q7.joins], "star(5)"
        ),
        "5D_DS_Q19": WorkloadQuery(
            "5D_DS_Q19", _rename(q19, "5D_DS_Q19"), [j.pid for j in q19.joins], "branch(6)"
        ),
        "4D_DS_Q26": WorkloadQuery(
            "4D_DS_Q26", _rename(q26, "4D_DS_Q26"), [j.pid for j in q26.joins], "star(5)"
        ),
        "4D_DS_Q91": WorkloadQuery(
            "4D_DS_Q91",
            _rename(q91, "4D_DS_Q91"),
            [
                jpid(q91, "catalog_sales", "customer"),
                jpid(q91, "customer", "customer_address"),
                jpid(q91, "customer", "customer_demographics"),
                jpid(q91, "catalog_sales", "date_dim"),
            ],
            "branch(7)",
        ),
    }


#: Names of the ten Table 2 benchmark spaces, in the paper's order.
TABLE2_NAMES = [
    "3D_H_Q5",
    "3D_H_Q7",
    "4D_H_Q8",
    "5D_H_Q7",
    "3D_DS_Q15",
    "3D_DS_Q96",
    "4D_DS_Q7",
    "5D_DS_Q19",
    "4D_DS_Q26",
    "4D_DS_Q91",
]


def full_workload(h_schema: Schema, ds_schema: Schema) -> Dict[str, WorkloadQuery]:
    """All Table 2 queries, keyed by their paper names."""
    workload: Dict[str, WorkloadQuery] = {}
    workload.update(tpch_workload(h_schema))
    workload.update(tpcds_workload(ds_schema))
    return workload


#: Backwards-compatible alias (pre-1.0 private name).
_join_dim_maximum = join_dim_maximum
