"""AsyncioRuntime: real clock; blocking work offloaded to a bounded
thread pool and awaited from the event loop.

The bouquet pipeline is CPU-bound synchronous Python (numpy kernels,
DP enumeration, instrumented execution), so the asyncio front-end never
runs it on the loop thread: handlers stay responsive by awaiting
:meth:`AsyncioRuntime.arun`, which bridges ``loop.run_in_executor`` over
the runtime's own bounded :class:`~concurrent.futures.ThreadPoolExecutor`.
Backpressure is enforced *before* work reaches the pool (admission
control in the gateway), so the executor queue cannot grow silently.
"""

from __future__ import annotations

import asyncio
import functools
import time
from concurrent.futures import Future, ThreadPoolExecutor
from typing import Any, Callable

from ..exceptions import ReproError
from .base import Runtime


class AsyncioRuntime(Runtime):
    """Production runtime: asyncio event loop + bounded worker pool."""

    name = "asyncio"

    def __init__(self, max_workers: int = 8):
        if max_workers < 1:
            raise ReproError("asyncio runtime needs at least one worker")
        self.max_workers = max_workers
        self._pool = ThreadPoolExecutor(
            max_workers=max_workers, thread_name_prefix="bouquet-serve"
        )

    def now(self) -> float:
        return time.monotonic()

    def sleep(self, seconds: float) -> None:
        """Blocking sleep — only sensible off the loop thread; coroutine
        code should ``await asleep`` instead."""
        if seconds > 0:
            time.sleep(seconds)

    def submit(self, fn: Callable[..., Any], *args: Any, **kwargs: Any) -> Future:
        return self._pool.submit(fn, *args, **kwargs)

    async def arun(self, fn: Callable[..., Any], *args: Any, **kwargs: Any) -> Any:
        """Await ``fn(*args, **kwargs)`` executed on the worker pool."""
        loop = asyncio.get_running_loop()
        return await loop.run_in_executor(
            self._pool, functools.partial(fn, *args, **kwargs)
        )

    async def asleep(self, seconds: float) -> None:
        await asyncio.sleep(max(seconds, 0.0))

    def shutdown(self) -> None:
        self._pool.shutdown(wait=True)
