"""SimulatedRuntime: a virtual clock over a deterministic event heap.

The load harness and the admission test-suite run *thousands* of
concurrent sessions through the serving front-end in milliseconds of
wall time: arrivals, queue waits, and service completions are events on
a heap ordered by virtual time (FIFO within a tick via a sequence
counter), so a given seed replays bit-identically on any machine.

The discrete-event surface is three calls:

* :meth:`schedule` — run a callback ``delay`` virtual seconds from now;
* :meth:`run_until_idle` — pop events in (time, seq) order, advancing
  the clock to each event's timestamp, until the heap drains;
* :meth:`advance` — move the clock with no event (think time).

``sleep`` advances the clock directly — callers inside an event
callback should prefer :meth:`schedule` so other events interleave.
"""

from __future__ import annotations

import heapq
from concurrent.futures import Future
from typing import Any, Callable, List, Tuple

from ..exceptions import ReproError
from .base import Runtime, resolved


class SimulatedRuntime(Runtime):
    """Virtual time; instant, deterministic execution."""

    name = "simulated"

    def __init__(self, start: float = 0.0):
        self._now = float(start)
        self._seq = 0
        self._heap: List[Tuple[float, int, Callable[[], None]]] = []

    # -- clock ---------------------------------------------------------

    def now(self) -> float:
        return self._now

    def sleep(self, seconds: float) -> None:
        self.advance(seconds)

    def advance(self, seconds: float) -> float:
        """Move the virtual clock forward; returns the new time."""
        if seconds < 0:
            raise ReproError("simulated clock cannot run backwards")
        self._now += seconds
        return self._now

    # -- dispatch ------------------------------------------------------

    def submit(self, fn: Callable[..., Any], *args: Any, **kwargs: Any) -> Future:
        try:
            return resolved(fn(*args, **kwargs))
        except BaseException as exc:
            future: Future = Future()
            future.set_exception(exc)
            return future

    # -- discrete events ----------------------------------------------

    def schedule(
        self, delay: float, fn: Callable[..., None], *args: Any
    ) -> None:
        """Run ``fn(*args)`` at virtual time ``now() + delay``."""
        if delay < 0:
            raise ReproError("cannot schedule an event in the past")
        self._seq += 1
        heapq.heappush(
            self._heap, (self._now + delay, self._seq, lambda: fn(*args))
        )

    @property
    def pending(self) -> int:
        return len(self._heap)

    def run_until_idle(self, max_events: int = 10_000_000) -> int:
        """Drain the event heap in deterministic order; returns the
        number of events fired.  ``max_events`` is a runaway backstop."""
        fired = 0
        while self._heap:
            if fired >= max_events:
                raise ReproError(
                    f"simulated runtime exceeded {max_events} events"
                )
            at, _seq, callback = heapq.heappop(self._heap)
            # Events scheduled "in the past" (clock moved by a sleep
            # inside a callback) fire immediately at the current time.
            if at > self._now:
                self._now = at
            callback()
            fired += 1
        return fired
