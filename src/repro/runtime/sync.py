"""SyncRuntime: real clock, inline execution, no event loop."""

from __future__ import annotations

import time
from concurrent.futures import Future
from typing import Any, Callable

from .base import Runtime, resolved


class SyncRuntime(Runtime):
    """The degenerate runtime: everything runs on the caller's thread.

    Used by CLI entry points and plain threaded callers (each thread
    simply calls into the gateway directly); also the default clock for
    the admission controller when no runtime is supplied.
    """

    name = "sync"

    def now(self) -> float:
        return time.monotonic()

    def sleep(self, seconds: float) -> None:
        if seconds > 0:
            time.sleep(seconds)

    def submit(self, fn: Callable[..., Any], *args: Any, **kwargs: Any) -> Future:
        try:
            return resolved(fn(*args, **kwargs))
        except BaseException as exc:  # propagate through the future contract
            future: Future = Future()
            future.set_exception(exc)
            return future
