"""The runtime interface: clock, sleeping, and blocking-work dispatch.

Every serving component that needs time or concurrency goes through a
:class:`Runtime` instead of reaching for :mod:`time` / :mod:`asyncio`
directly.  That single seam is what makes the front-end testable at
scale: the same admission controller, token buckets, and gateway run
against

* :class:`~repro.runtime.sync.SyncRuntime` — real monotonic clock,
  inline execution (CLI paths, plain threaded callers);
* :class:`~repro.runtime.aio.AsyncioRuntime` — real clock, blocking
  work offloaded to a bounded thread pool awaited from the event loop
  (the HTTP front-end);
* :class:`~repro.runtime.simulated.SimulatedRuntime` — a virtual clock
  plus a deterministic event heap, so thousands of concurrent sessions
  replay instantly and reproducibly (the load harness and CI).
"""

from __future__ import annotations

import abc
from concurrent.futures import Future
from typing import Any, Callable, ClassVar


class Runtime(abc.ABC):
    """Clock + dispatch abstraction shared by all serving front-ends."""

    #: Registry name ("sync", "asyncio", "simulated").
    name: ClassVar[str] = "abstract"

    @abc.abstractmethod
    def now(self) -> float:
        """Monotonic seconds — wall clock or virtual, runtime's choice."""

    @abc.abstractmethod
    def sleep(self, seconds: float) -> None:
        """Block (or virtually advance) for ``seconds``."""

    @abc.abstractmethod
    def submit(self, fn: Callable[..., Any], *args: Any, **kwargs: Any) -> Future:
        """Dispatch one unit of (possibly blocking) work.

        Returns a :class:`concurrent.futures.Future`; inline runtimes
        return it already resolved.
        """

    def shutdown(self) -> None:  # pragma: no cover - default no-op
        """Release any pooled resources; idempotent."""

    def __enter__(self) -> "Runtime":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.shutdown()
        return False

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<{type(self).__name__} now={self.now():.3f}>"


def resolved(value: Any) -> Future:
    """A completed future carrying ``value`` (inline-dispatch helper)."""
    future: Future = Future()
    future.set_result(value)
    return future
