"""repro.runtime — the clock/dispatch abstraction behind the serving
front-end.

One interface (:class:`~repro.runtime.base.Runtime`), three
implementations:

==================  =====================  ================================
runtime             execution model        use case
==================  =====================  ================================
``AsyncioRuntime``  event loop + bounded   the HTTP/JSON front-end
                    thread pool            (:mod:`repro.serve.http`)
``SyncRuntime``     inline, real clock     CLI paths, threaded callers
``SimulatedRuntime``virtual clock +        load harness, admission tests,
                    deterministic events   CI (thousands of sessions, ms)
==================  =====================  ================================

``get_runtime("sync" | "asyncio" | "simulated")`` builds one by name.
"""

from __future__ import annotations

from ..exceptions import ReproError
from .aio import AsyncioRuntime
from .base import Runtime, resolved
from .simulated import SimulatedRuntime
from .sync import SyncRuntime

__all__ = [
    "AsyncioRuntime",
    "RUNTIME_NAMES",
    "Runtime",
    "SimulatedRuntime",
    "SyncRuntime",
    "get_runtime",
    "resolved",
]

_RUNTIMES = {
    "sync": SyncRuntime,
    "asyncio": AsyncioRuntime,
    "simulated": SimulatedRuntime,
}

#: Canonical runtime spellings, for CLI choices and config validation.
RUNTIME_NAMES = tuple(sorted(_RUNTIMES))


def get_runtime(name: str, **kwargs) -> Runtime:
    """Instantiate a runtime by its canonical name."""
    try:
        factory = _RUNTIMES[name]
    except KeyError:
        raise ReproError(
            f"unknown runtime {name!r} (expected one of {list(RUNTIME_NAMES)})"
        ) from None
    return factory(**kwargs)
