"""Plan diagrams: plan choice and optimal cost over the ESS grid.

A *plan diagram* (Harish et al., VLDB 2007) colours every ESS location
with the optimizer's plan choice there; the associated cost field is the
POSP infimum curve/surface (PIC).  Diagrams can be produced exhaustively
(one optimizer call per location) or approximately from a candidate plan
set (cost every candidate everywhere, take the argmin) — the latter is
how high-dimensional spaces stay tractable.
"""

from __future__ import annotations

import itertools
import threading
from collections import OrderedDict
from typing import Dict, Iterable, List, Optional, Sequence

import numpy as np

from ..exceptions import EssError
from ..optimizer.optimizer import Optimizer, PlanRegistry
from ..optimizer.plans import cost_plan
from .space import Location, SelectivitySpace


class PlanCostCache:
    """Lazy per-plan cost fields over an ESS grid.

    ``cost(plan_id, location)`` and ``cost_array(plan_id)`` evaluate the
    plan's (abstract) cost function at grid locations, memoizing whole
    arrays per plan — the workhorse behind every ESS-wide metric sweep.

    The cache is thread-safe (the serving layer and the sweep engine's
    residue pool both share bouquets across threads) and optionally
    bounded: with ``max_plans`` set, the least-recently-used arrays are
    evicted once the limit is exceeded.  Stale entries can be dropped
    explicitly with :meth:`invalidate`.
    """

    def __init__(
        self,
        space: SelectivitySpace,
        optimizer: Optimizer,
        registry: PlanRegistry,
        max_plans: Optional[int] = None,
    ):
        if max_plans is not None and max_plans < 1:
            raise EssError("PlanCostCache max_plans must be >= 1")
        self.space = space
        self.optimizer = optimizer
        self.registry = registry
        self.max_plans = max_plans
        self._arrays: "OrderedDict[int, np.ndarray]" = OrderedDict()
        self._lock = threading.RLock()

    def __len__(self) -> int:
        with self._lock:
            return len(self._arrays)

    def __getstate__(self) -> dict:
        # The lock is rebuilt, not pickled (mirroring PlanRegistry) —
        # this is what lets a bouquet payload ship through repro.par's
        # worker queues under any start method.
        with self._lock:
            state = self.__dict__.copy()
            state["_arrays"] = OrderedDict(self._arrays)
        del state["_lock"]
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        self._lock = threading.RLock()

    def snapshot(self) -> Dict[int, np.ndarray]:
        """The currently materialized cost arrays, keyed by plan id."""
        with self._lock:
            return dict(self._arrays)

    def seed(self, arrays: Dict[int, np.ndarray]) -> None:
        """Pre-populate cost arrays (e.g. shared-memory planes).

        Existing entries win: a seeded plane never displaces an array a
        racing builder already installed.
        """
        for plan_id, array in arrays.items():
            if array.shape != self.space.shape:
                raise EssError("seeded cost array does not match the grid shape")
            with self._lock:
                self._arrays.setdefault(plan_id, array)

    def invalidate(self, plan_id: Optional[int] = None) -> None:
        """Drop the cached array for one plan (or all of them)."""
        with self._lock:
            if plan_id is None:
                self._arrays.clear()
            else:
                self._arrays.pop(plan_id, None)

    def cost_array(self, plan_id: int) -> np.ndarray:
        """Full grid of costs for one plan (shape = space.shape).

        Evaluated in a single vectorized pass: the assignment maps each
        error pid to a broadcast grid of its axis values, and the plan's
        (purely arithmetic, monotone) cost formulas evaluate elementwise
        over the whole ESS at once.
        """
        with self._lock:
            array = self._arrays.get(plan_id)
            if array is not None:
                self._arrays.move_to_end(plan_id)
                return array
        # Built outside the lock: cost_plan is pure and two racing
        # builders produce identical arrays, so losing the race only
        # wastes one build.
        tracer = self.optimizer.tracer
        if tracer.enabled:
            tracer.count("ess.cost_array_builds")
        plan = self.registry.plan(plan_id)
        space = self.space
        assignment: Dict[str, object] = dict(space.base_assignment)
        meshes = np.meshgrid(*space.grids, indexing="ij")
        for dim, mesh in zip(space.dimensions, meshes):
            assignment[dim.pid] = mesh
        est = cost_plan(
            plan, self.optimizer.schema, self.optimizer.cost_model, assignment
        )
        array = np.broadcast_to(np.asarray(est.cost, dtype=float), space.shape).copy()
        with self._lock:
            existing = self._arrays.get(plan_id)
            if existing is not None:
                self._arrays.move_to_end(plan_id)
                return existing
            self._arrays[plan_id] = array
            if self.max_plans is not None:
                while len(self._arrays) > self.max_plans:
                    self._arrays.popitem(last=False)
        return array

    def cost(self, plan_id: int, location: Location) -> float:
        return float(self.cost_array(plan_id)[location])

    def cost_at_values(self, plan_id: int, values: Sequence[float]) -> float:
        """Cost at an arbitrary continuous point (used by q_run tracking)."""
        plan = self.registry.plan(plan_id)
        assignment = self.space.assignment_for(values)
        est = cost_plan(
            plan, self.optimizer.schema, self.optimizer.cost_model, assignment
        )
        return est.cost


class PlanDiagram:
    """Plan choice + optimal cost at every ESS grid location."""

    def __init__(
        self,
        space: SelectivitySpace,
        plan_ids: np.ndarray,
        costs: np.ndarray,
        registry: PlanRegistry,
        cache: Optional[PlanCostCache] = None,
    ):
        if plan_ids.shape != space.shape or costs.shape != space.shape:
            raise EssError("diagram arrays do not match the ESS grid shape")
        self.space = space
        self.plan_ids = plan_ids
        self.costs = costs
        self.registry = registry
        self.cache = cache

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    @classmethod
    def exhaustive(
        cls,
        optimizer: Optimizer,
        space: SelectivitySpace,
        workers: Optional[int] = None,
        engine: str = "batch",
    ) -> "PlanDiagram":
        """Optimal plan at every grid location.

        ``engine="batch"`` (default) runs the DPsize enumeration once for
        the whole grid as a slab (:mod:`repro.batchopt`); the reference
        engine makes one scalar optimizer call per location.  Both visit
        locations in row-major order, so plan ids, costs, and the
        resulting diagram are identical — the engines differ only in
        compile latency.

        POSP generation is "embarrassingly parallel" (§4.2): with
        ``workers > 1`` the grid is partitioned across processes, each
        optimizing its share independently (scalar or slab-at-a-time per
        the engine); the parent merges the plans into one registry.
        Results are identical to the serial run.
        """
        from .posp import resolve_engine

        engine = resolve_engine(optimizer, engine)
        registry = optimizer.registry(space.query)
        plan_ids = np.empty(space.shape, dtype=np.int64)
        costs = np.empty(space.shape, dtype=float)
        with optimizer.tracer.span(
            "ess.exhaustive_diagram",
            locations=space.size,
            workers=workers or 1,
            engine=engine,
        ) as span:
            if workers and workers > 1:
                if engine == "batch":
                    from ..batchopt.shard import parallel_optimize_batch

                    results = parallel_optimize_batch(
                        optimizer, space, list(space.locations()), workers
                    )
                    for location, plan, cost, _rows in results:
                        plan_id, _ = registry.register(plan)
                        plan_ids[location] = plan_id
                        costs[location] = cost
                else:
                    for location, plan, cost in _parallel_optimize(
                        optimizer, space, workers
                    ):
                        plan_id, _ = registry.register(plan)
                        plan_ids[location] = plan_id
                        costs[location] = cost
            elif engine == "batch":
                locations = list(space.locations())
                assignments = [
                    space.assignment_at(location) for location in locations
                ]
                for location, result in zip(
                    locations, optimizer.optimize_batch(space.query, assignments)
                ):
                    plan_ids[location] = result.plan_id
                    costs[location] = result.cost
            else:
                for location in space.locations():
                    assignment = space.assignment_at(location)
                    result = optimizer.optimize(space.query, assignment=assignment)
                    plan_ids[location] = result.plan_id
                    costs[location] = result.cost
            span.set(posp=len(np.unique(plan_ids)))
        cache = PlanCostCache(space, optimizer, registry)
        return cls(space, plan_ids, costs, registry, cache)

    @classmethod
    def from_candidates(
        cls,
        optimizer: Optimizer,
        space: SelectivitySpace,
        seed_locations: Optional[Iterable[Location]] = None,
        engine: str = "batch",
    ) -> "PlanDiagram":
        """Approximate diagram: optimize at seed locations to harvest
        candidate plans, then cost every candidate everywhere and argmin.

        With seeds on a coarse subgrid this is a standard Picasso-style
        approximation; it converges to the exhaustive diagram as seeds
        densify, and is exact wherever a seed sits.  With the default
        batch engine all seeds are optimized by one slab enumeration.
        """
        from .posp import resolve_engine

        engine = resolve_engine(optimizer, engine)
        registry = optimizer.registry(space.query)
        if seed_locations is None:
            seed_locations = coarse_subgrid(space, per_dim=4)
        candidate_ids = set()
        with optimizer.tracer.span(
            "ess.candidate_diagram", locations=space.size, engine=engine
        ) as span:
            seeds = 0
            if engine == "batch":
                locations = list(seed_locations)
                assignments = [
                    space.assignment_at(location) for location in locations
                ]
                for result in optimizer.optimize_batch(space.query, assignments):
                    candidate_ids.add(result.plan_id)
                seeds = len(locations)
            else:
                for location in seed_locations:
                    assignment = space.assignment_at(location)
                    result = optimizer.optimize(space.query, assignment=assignment)
                    candidate_ids.add(result.plan_id)
                    seeds += 1
            span.set(seeds=seeds, candidates=len(candidate_ids))
        cache = PlanCostCache(space, optimizer, registry)
        ordered = sorted(candidate_ids)
        stacked = np.stack([cache.cost_array(pid) for pid in ordered])
        argmin = np.argmin(stacked, axis=0)
        costs = np.min(stacked, axis=0)
        id_lookup = np.array(ordered, dtype=np.int64)
        plan_ids = id_lookup[argmin]
        return cls(space, plan_ids, costs, registry, cache)

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------

    @property
    def posp_plan_ids(self) -> List[int]:
        """Distinct plan ids appearing in the diagram (the POSP set)."""
        return sorted(int(p) for p in np.unique(self.plan_ids))

    def plan_at(self, location: Location) -> int:
        return int(self.plan_ids[location])

    def cost_at(self, location: Location) -> float:
        return float(self.costs[location])

    def occupancy(self) -> Dict[int, int]:
        """Number of grid locations owned by each plan."""
        ids, counts = np.unique(self.plan_ids, return_counts=True)
        return {int(i): int(c) for i, c in zip(ids, counts)}

    @property
    def cmin(self) -> float:
        return float(self.costs[self.space.origin])

    @property
    def cmax(self) -> float:
        return float(self.costs[self.space.corner])

    def check_monotone(self) -> bool:
        """Verify the PIC is non-decreasing along every axis (PCM check)."""
        for axis in range(self.space.dimensionality):
            diffs = np.diff(self.costs, axis=axis)
            if np.any(diffs < -1e-6 * np.abs(self.costs.take(range(diffs.shape[axis]), axis=axis))):
                return False
        return True


# ---------------------------------------------------------------------------
# Parallel POSP generation (§4.2)
# ---------------------------------------------------------------------------


def _optimize_chunk(ctx, payload, locations: List[Location]):
    # repro.par task: payload = (optimizer, space).  Workers never trace —
    # the tracer embedded in the payload degraded to the null tracer
    # while pickling (Tracer.__reduce__).
    optimizer, space = payload
    results = []
    for location in locations:
        assignment = space.assignment_at(location)
        result = optimizer.optimize(space.query, assignment=assignment)
        results.append((location, result.plan, result.cost))
    return results


def _parallel_optimize(optimizer: Optimizer, space: SelectivitySpace, workers: int):
    """Optimize every grid location across ``workers`` processes.

    Runs on the persistent :mod:`repro.par` pool: the start-method
    resolution (fork-preferred, verified-spawn fallback) and the payload
    pickle hardening live there, the ``(optimizer, space)`` payload is
    shipped to each worker at most once per content digest, and chunk
    results are reassembled in submission order so plans register in
    exactly the serial row-major order — plan ids are identical at any
    worker count.
    """
    from ..par import ParError, get_pool

    locations = list(space.locations())
    chunk_size = max(1, len(locations) // (workers * 4))
    chunks = [
        locations[i : i + chunk_size] for i in range(0, len(locations), chunk_size)
    ]
    tracer = optimizer.tracer
    if tracer.enabled:
        tracer.event(
            "ess.parallel_fanout",
            workers=workers,
            chunks=len(chunks),
            locations=len(locations),
        )
    pool = get_pool(workers, tracer=tracer)
    try:
        results = pool.run(
            _optimize_chunk, (optimizer, space), chunks, tracer=tracer
        )
    except ParError as exc:
        raise EssError(f"parallel POSP generation failed: {exc}") from exc
    for chunk_result in results:
        yield from chunk_result


def coarse_subgrid(space: SelectivitySpace, per_dim: int = 4) -> List[Location]:
    """Evenly spaced seed locations, always including both diagonal corners."""
    axes = []
    for res in space.shape:
        count = min(per_dim, res)
        idx = np.unique(np.linspace(0, res - 1, count).round().astype(int))
        axes.append(list(idx))
    return list(itertools.product(*axes))
