"""Identifying the error-prone selectivity dimensions (§4.1, §8).

Three complementary mechanisms from the paper:

* **Uncertainty classification rules** (after Kabra & DeWitt, cited in
  §4.1): each predicate is graded from NONE to VERY_HIGH uncertainty
  based on what the statistics can and cannot promise.
* **A workload error log**: observed estimate-vs-actual errors of past
  executions flag predicates as error-prone.
* **Dimension elimination by cost derivative** (§8, item iii): a
  candidate dimension whose selectivity barely moves any optimal plan's
  cost on a low-resolution sweep can be dropped from the ESS.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from ..catalog.statistics import DatabaseStatistics
from ..exceptions import EssError
from ..optimizer.optimizer import Optimizer
from ..query.predicates import JoinPredicate, SelectionPredicate
from ..query.query import Query
from .space import ErrorDimension


class Uncertainty(enum.IntEnum):
    """Graded estimation uncertainty of one predicate (§4.1)."""

    NONE = 0
    LOW = 1
    MEDIUM = 2
    HIGH = 3
    VERY_HIGH = 4


def classify_predicate(
    query: Query,
    pid: str,
    statistics: Optional[DatabaseStatistics],
) -> Uncertainty:
    """Apply the uncertainty-modelling rules to one predicate.

    * no statistics at all -> VERY_HIGH (magic numbers);
    * PK-FK equi-join -> NONE (derivable from schema constraints when the
      whole PK side participates, §8);
    * other equi-joins -> HIGH (the 1/max(ndv) formula assumes
      uniformity);
    * range selections with histograms -> LOW;
    * equality selections -> LOW when the value is a tracked MCV,
      MEDIUM otherwise (per-distinct uniformity assumption).
    """
    pred = query.predicate(pid)
    if isinstance(pred, JoinPredicate):
        if query.is_pk_fk_join(pred):
            return Uncertainty.NONE
        return Uncertainty.HIGH
    if not isinstance(pred, SelectionPredicate):  # pragma: no cover
        raise EssError(f"unknown predicate kind for {pid!r}")
    col_stats = (
        None if statistics is None else statistics.column(pred.table, pred.column)
    )
    if col_stats is None:
        return Uncertainty.VERY_HIGH
    if pred.is_range:
        return Uncertainty.LOW if col_stats.histogram_bounds else Uncertainty.MEDIUM
    if pred.op == "in":
        return Uncertainty.MEDIUM  # per-value uniformity assumptions stack
    if pred.value in col_stats.mcv_values:
        return Uncertainty.LOW
    return Uncertainty.MEDIUM


def select_error_dimensions(
    query: Query,
    statistics: Optional[DatabaseStatistics],
    threshold: Uncertainty = Uncertainty.MEDIUM,
) -> List[str]:
    """Predicates whose uncertainty is at or above ``threshold``.

    The paper's fallback — "make all predicates selectivity dimensions" —
    is ``threshold=Uncertainty.NONE``.
    """
    return [
        pid
        for pid in query.predicate_ids
        if classify_predicate(query, pid, statistics) >= threshold
    ]


# ---------------------------------------------------------------------------
# Workload error log
# ---------------------------------------------------------------------------


@dataclass
class ErrorObservation:
    """One recorded estimate-vs-actual pair for a predicate."""

    pid: str
    estimated: float
    actual: float

    @property
    def error_factor(self) -> float:
        """Multiplicative error, always >= 1."""
        lo, hi = sorted((max(self.estimated, 1e-12), max(self.actual, 1e-12)))
        return hi / lo


class WorkloadErrorLog:
    """History of estimation errors observed across query executions.

    The alternative dimension-identification mechanism of §4.1: a
    predicate that has repeatedly shown large multiplicative errors in
    the workload history becomes an ESS dimension for future queries.
    """

    def __init__(self):
        self._observations: Dict[str, List[ErrorObservation]] = {}

    def record(self, pid: str, estimated: float, actual: float):
        entry = ErrorObservation(pid, estimated, actual)
        self._observations.setdefault(pid, []).append(entry)

    def observations(self, pid: str) -> List[ErrorObservation]:
        return list(self._observations.get(pid, []))

    def worst_error(self, pid: str) -> float:
        entries = self._observations.get(pid)
        if not entries:
            return 1.0
        return max(entry.error_factor for entry in entries)

    def error_prone_pids(self, factor: float = 2.0) -> List[str]:
        """Predicates whose worst observed error exceeds ``factor``."""
        if factor < 1.0:
            raise EssError("error factor threshold must be >= 1")
        return sorted(
            pid for pid in self._observations if self.worst_error(pid) > factor
        )


# ---------------------------------------------------------------------------
# Dimension elimination by cost derivative (§8)
# ---------------------------------------------------------------------------


@dataclass
class DimensionImpact:
    """Measured cost impact of one candidate dimension."""

    dimension: ErrorDimension
    cost_span: float  # max/min optimal cost along the dimension's sweep

    @property
    def negligible(self) -> bool:
        return self.cost_span < 1.0 + 1e-9


def measure_dimension_impacts(
    optimizer: Optimizer,
    query: Query,
    dimensions: Sequence[ErrorDimension],
    base_assignment: Mapping[str, float],
    resolution: int = 4,
) -> List[DimensionImpact]:
    """Low-resolution sweep of each candidate dimension in isolation.

    Each dimension is swept over ``resolution`` log-spaced points with the
    other candidates pinned at their geometric midpoints; the recorded
    span is the ratio between the largest and smallest optimal cost seen.
    """
    if resolution < 2:
        raise EssError("derivative mapping needs at least 2 points per dim")
    midpoints = {
        dim.pid: math.sqrt(dim.lo * dim.hi) for dim in dimensions
    }
    impacts = []
    for dim in dimensions:
        costs = []
        for i in range(resolution):
            t = i / (resolution - 1)
            value = dim.lo * (dim.hi / dim.lo) ** t
            assignment = dict(base_assignment)
            assignment.update(midpoints)
            assignment[dim.pid] = value
            result = optimizer.optimize(query, assignment=assignment)
            costs.append(result.cost)
        impacts.append(
            DimensionImpact(dimension=dim, cost_span=max(costs) / min(costs))
        )
    return impacts


def eliminate_low_impact_dimensions(
    optimizer: Optimizer,
    query: Query,
    dimensions: Sequence[ErrorDimension],
    base_assignment: Mapping[str, float],
    min_span: float = 1.2,
    resolution: int = 4,
) -> Tuple[List[ErrorDimension], List[DimensionImpact]]:
    """Drop candidate dimensions whose cost impact is marginal (§8).

    A dimension is kept iff sweeping it changes the optimal cost by at
    least ``min_span`` (a ratio).  Returns ``(kept, impacts)``; at least
    one dimension is always kept (the highest-impact one) so the ESS
    never degenerates.
    """
    if not dimensions:
        raise EssError("no candidate dimensions")
    impacts = measure_dimension_impacts(
        optimizer, query, dimensions, base_assignment, resolution
    )
    kept = [imp.dimension for imp in impacts if imp.cost_span >= min_span]
    if not kept:
        best = max(impacts, key=lambda imp: imp.cost_span)
        kept = [best.dimension]
    return kept, impacts
