"""Identifying the error-prone selectivity dimensions (§4.1, §8).

Four complementary mechanisms:

* **Uncertainty classification rules** (after Kabra & DeWitt, cited in
  §4.1): each predicate is graded from NONE to VERY_HIGH uncertainty
  based on what the statistics can and cannot promise.
* **A workload error log**: observed estimate-vs-actual errors of past
  executions flag predicates as error-prone.
* **Dimension elimination by cost derivative** (§8, item iii): a
  candidate dimension whose selectivity barely moves any optimal plan's
  cost on a low-resolution sweep can be dropped from the ESS.
* **Error-sensitivity ranking** (PARQO-style, beyond the paper): for
  each candidate the base-assignment-optimal plan is re-costed across a
  selectivity sweep of that predicate alone and compared against the
  sweep's true optimum; the worst-case suboptimality *penalty* measures
  how badly an estimation error on that predicate could hurt, which is
  exactly what an ESS dimension exists to protect against.  This is the
  automatic per-query strategy the workload generator
  (:mod:`repro.wlgen`) uses in place of Table 2's hand-picked dims.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from ..catalog.statistics import DatabaseStatistics
from ..exceptions import EssError
from ..optimizer.optimizer import Optimizer
from ..query.predicates import JoinPredicate, SelectionPredicate
from ..query.query import Query
from .space import ErrorDimension


class Uncertainty(enum.IntEnum):
    """Graded estimation uncertainty of one predicate (§4.1)."""

    NONE = 0
    LOW = 1
    MEDIUM = 2
    HIGH = 3
    VERY_HIGH = 4


def classify_predicate(
    query: Query,
    pid: str,
    statistics: Optional[DatabaseStatistics],
) -> Uncertainty:
    """Apply the uncertainty-modelling rules to one predicate.

    * no statistics at all -> VERY_HIGH (magic numbers);
    * PK-FK equi-join -> NONE (derivable from schema constraints when the
      whole PK side participates, §8);
    * other equi-joins -> HIGH (the 1/max(ndv) formula assumes
      uniformity);
    * range selections with histograms -> LOW;
    * equality selections -> LOW when the value is a tracked MCV,
      MEDIUM otherwise (per-distinct uniformity assumption).
    """
    pred = query.predicate(pid)
    if isinstance(pred, JoinPredicate):
        if query.is_pk_fk_join(pred):
            return Uncertainty.NONE
        return Uncertainty.HIGH
    if not isinstance(pred, SelectionPredicate):  # pragma: no cover
        raise EssError(f"unknown predicate kind for {pid!r}")
    col_stats = (
        None if statistics is None else statistics.column(pred.table, pred.column)
    )
    if col_stats is None:
        return Uncertainty.VERY_HIGH
    if pred.is_range:
        return Uncertainty.LOW if col_stats.histogram_bounds else Uncertainty.MEDIUM
    if pred.op == "in":
        return Uncertainty.MEDIUM  # per-value uniformity assumptions stack
    if pred.value in col_stats.mcv_values:
        return Uncertainty.LOW
    return Uncertainty.MEDIUM


def select_error_dimensions(
    query: Query,
    statistics: Optional[DatabaseStatistics],
    threshold: Uncertainty = Uncertainty.MEDIUM,
) -> List[str]:
    """Predicates whose uncertainty is at or above ``threshold``.

    The paper's fallback — "make all predicates selectivity dimensions" —
    is ``threshold=Uncertainty.NONE``.
    """
    return [
        pid
        for pid in query.predicate_ids
        if classify_predicate(query, pid, statistics) >= threshold
    ]


# ---------------------------------------------------------------------------
# Workload error log
# ---------------------------------------------------------------------------


@dataclass
class ErrorObservation:
    """One recorded estimate-vs-actual pair for a predicate."""

    pid: str
    estimated: float
    actual: float

    @property
    def error_factor(self) -> float:
        """Multiplicative error, always >= 1."""
        lo, hi = sorted((max(self.estimated, 1e-12), max(self.actual, 1e-12)))
        return hi / lo


class WorkloadErrorLog:
    """History of estimation errors observed across query executions.

    The alternative dimension-identification mechanism of §4.1: a
    predicate that has repeatedly shown large multiplicative errors in
    the workload history becomes an ESS dimension for future queries.
    """

    def __init__(self):
        self._observations: Dict[str, List[ErrorObservation]] = {}

    def record(self, pid: str, estimated: float, actual: float):
        entry = ErrorObservation(pid, estimated, actual)
        self._observations.setdefault(pid, []).append(entry)

    def observations(self, pid: str) -> List[ErrorObservation]:
        return list(self._observations.get(pid, []))

    def worst_error(self, pid: str) -> float:
        entries = self._observations.get(pid)
        if not entries:
            return 1.0
        return max(entry.error_factor for entry in entries)

    def error_prone_pids(self, factor: float = 2.0) -> List[str]:
        """Predicates whose worst observed error exceeds ``factor``."""
        if factor < 1.0:
            raise EssError("error factor threshold must be >= 1")
        return sorted(
            pid for pid in self._observations if self.worst_error(pid) > factor
        )


# ---------------------------------------------------------------------------
# Dimension elimination by cost derivative (§8)
# ---------------------------------------------------------------------------


@dataclass
class DimensionImpact:
    """Measured cost impact of one candidate dimension."""

    dimension: ErrorDimension
    cost_span: float  # max/min optimal cost along the dimension's sweep

    @property
    def negligible(self) -> bool:
        return self.cost_span < 1.0 + 1e-9


def measure_dimension_impacts(
    optimizer: Optimizer,
    query: Query,
    dimensions: Sequence[ErrorDimension],
    base_assignment: Mapping[str, float],
    resolution: int = 4,
) -> List[DimensionImpact]:
    """Low-resolution sweep of each candidate dimension in isolation.

    Each dimension is swept over ``resolution`` log-spaced points with the
    other candidates pinned at their geometric midpoints; the recorded
    span is the ratio between the largest and smallest optimal cost seen.
    """
    if resolution < 2:
        raise EssError("derivative mapping needs at least 2 points per dim")
    midpoints = {
        dim.pid: math.sqrt(dim.lo * dim.hi) for dim in dimensions
    }
    impacts = []
    for dim in dimensions:
        costs = []
        for i in range(resolution):
            t = i / (resolution - 1)
            value = dim.lo * (dim.hi / dim.lo) ** t
            assignment = dict(base_assignment)
            assignment.update(midpoints)
            assignment[dim.pid] = value
            result = optimizer.optimize(query, assignment=assignment)
            costs.append(result.cost)
        impacts.append(
            DimensionImpact(dimension=dim, cost_span=max(costs) / min(costs))
        )
    return impacts


def eliminate_low_impact_dimensions(
    optimizer: Optimizer,
    query: Query,
    dimensions: Sequence[ErrorDimension],
    base_assignment: Mapping[str, float],
    min_span: float = 1.2,
    resolution: int = 4,
) -> Tuple[List[ErrorDimension], List[DimensionImpact]]:
    """Drop candidate dimensions whose cost impact is marginal (§8).

    A dimension is kept iff sweeping it changes the optimal cost by at
    least ``min_span`` (a ratio).  Returns ``(kept, impacts)``; at least
    one dimension is always kept (the highest-impact one) so the ESS
    never degenerates.
    """
    if not dimensions:
        raise EssError("no candidate dimensions")
    impacts = measure_dimension_impacts(
        optimizer, query, dimensions, base_assignment, resolution
    )
    kept = [imp.dimension for imp in impacts if imp.cost_span >= min_span]
    if not kept:
        best = max(impacts, key=lambda imp: imp.cost_span)
        kept = [best.dimension]
    return kept, impacts


# ---------------------------------------------------------------------------
# Error-sensitivity ranking (PARQO-style penalty of estimation error)
# ---------------------------------------------------------------------------

#: Selectivity range for candidate *selection* dimensions (mirrors
#: :data:`repro.query.workload.SELECTION_DIM_RANGE` without the import
#: cycle a module-level import would create).
_SELECTION_CANDIDATE_RANGE = (1e-4, 1.0)

#: Decades below the legal maximum spanned by candidate join dimensions.
_JOIN_CANDIDATE_DECADES = 3.0


@dataclass
class SensitivityScore:
    """Measured error-sensitivity of one candidate dimension.

    ``penalty`` is the worst-case multiplicative suboptimality the
    base-optimal plan suffers when the candidate's selectivity is swept
    across its legal range (>= 1; 1 means errors on this predicate are
    harmless).  ``cost_span`` is the max/min ratio of the *optimal* cost
    along the same sweep — the §8 derivative signal, kept as a
    tie-breaking secondary indicator.
    """

    dimension: ErrorDimension
    penalty: float
    cost_span: float

    @property
    def key(self) -> Tuple[float, float, str]:
        """Descending-sort key: penalty, then span, then stable pid."""
        return (-self.penalty, -self.cost_span, self.dimension.pid)


def candidate_error_dimensions(query: Query) -> List[ErrorDimension]:
    """Every predicate of ``query`` as a candidate ESS dimension.

    Join candidates span :data:`_JOIN_CANDIDATE_DECADES` orders of
    magnitude below their schematically-legal maximum (1/|PK| for FK
    joins, §4.1); selection candidates span
    :data:`_SELECTION_CANDIDATE_RANGE`.  Ordered by pid so downstream
    ranking is deterministic.
    """
    from ..query.workload import join_dim_maximum

    schema = query.schema
    dims: List[ErrorDimension] = []
    for pid in query.predicate_ids:
        pred = query.predicate(pid)
        if isinstance(pred, JoinPredicate):
            hi = join_dim_maximum(schema, pred)
            lo = hi / (10.0 ** _JOIN_CANDIDATE_DECADES)
            label = f"{pred.left_table}x{pred.right_table}"
        else:
            lo, hi = _SELECTION_CANDIDATE_RANGE
            label = f"{pred.table}.{pred.column}"
        dims.append(ErrorDimension(pid=pid, lo=lo, hi=hi, label=label))
    return dims


def measure_error_sensitivity(
    optimizer: Optimizer,
    query: Query,
    candidates: Sequence[ErrorDimension],
    base_assignment: Mapping[str, float],
    resolution: int = 4,
) -> List[SensitivityScore]:
    """Score each candidate by the damage a selectivity error could do.

    For every candidate dimension in isolation: sweep ``resolution``
    log-spaced selectivities across its range while the rest of the
    assignment stays at ``base_assignment``; at each point, cost the plan
    that was optimal at the *base* assignment (the plan a native
    optimizer trusting its estimate would run) and divide by the true
    optimal cost there.  The maximum of that ratio is the candidate's
    penalty.  Results come back sorted most-sensitive-first by
    :attr:`SensitivityScore.key`.
    """
    if resolution < 2:
        raise EssError("sensitivity ranking needs at least 2 points per dim")
    base = dict(base_assignment)
    base_plan = optimizer.optimize(query, assignment=base).plan
    scores: List[SensitivityScore] = []
    for dim in candidates:
        penalty = 1.0
        costs = []
        for i in range(resolution):
            t = i / (resolution - 1)
            value = dim.lo * (dim.hi / dim.lo) ** t
            assignment = dict(base)
            assignment[dim.pid] = value
            optimal = optimizer.optimize(query, assignment=assignment)
            frozen = optimizer.cost(query, base_plan, assignment)
            costs.append(optimal.cost)
            penalty = max(penalty, frozen.cost / max(optimal.cost, 1e-300))
        scores.append(
            SensitivityScore(
                dimension=dim,
                penalty=penalty,
                cost_span=max(costs) / max(min(costs), 1e-300),
            )
        )
    scores.sort(key=lambda score: score.key)
    return scores


def sensitivity_error_dimensions(
    optimizer: Optimizer,
    query: Query,
    base_assignment: Mapping[str, float],
    candidates: Optional[Sequence[ErrorDimension]] = None,
    max_dims: int = 3,
    min_penalty: float = 1.05,
    resolution: int = 4,
) -> Tuple[List[ErrorDimension], List[SensitivityScore]]:
    """Pick the ESS dimensions of ``query`` by error-sensitivity ranking.

    The automatic replacement for Table 2's hand-picked dimension lists:
    candidates default to *every* predicate
    (:func:`candidate_error_dimensions`), each is scored by
    :func:`measure_error_sensitivity`, and the top ``max_dims`` whose
    penalty reaches ``min_penalty`` are kept.  At least one dimension is
    always returned (the highest-penalty candidate) so the ESS never
    degenerates.  Returns ``(chosen, all_scores)`` with ``all_scores``
    sorted most-sensitive-first.
    """
    if max_dims < 1:
        raise EssError("sensitivity selection needs max_dims >= 1")
    if candidates is None:
        candidates = candidate_error_dimensions(query)
    if not candidates:
        raise EssError("no candidate dimensions to rank")
    scores = measure_error_sensitivity(
        optimizer, query, candidates, base_assignment, resolution
    )
    chosen = [s.dimension for s in scores[:max_dims] if s.penalty >= min_penalty]
    if not chosen:
        chosen = [scores[0].dimension]
    return chosen, scores
