"""Error-prone selectivity space: grids, plan diagrams, POSP, reduction."""

from .diagram import PlanCostCache, PlanDiagram, coarse_subgrid
from .dimensioning import (
    DimensionImpact,
    SensitivityScore,
    Uncertainty,
    WorkloadErrorLog,
    candidate_error_dimensions,
    classify_predicate,
    eliminate_low_impact_dimensions,
    measure_dimension_impacts,
    measure_error_sensitivity,
    select_error_dimensions,
    sensitivity_error_dimensions,
)
from .posp import ContourBandResult, contour_focused_posp, diagram_from_band
from .reduction import DEFAULT_LAMBDA, ReducedAssignment, anorexic_reduce, reduced_diagram
from .render import render_1d_profile, render_2d_diagram, render_slice
from .space import ErrorDimension, Location, SelectivitySpace

__all__ = [
    "DimensionImpact",
    "SensitivityScore",
    "Uncertainty",
    "WorkloadErrorLog",
    "candidate_error_dimensions",
    "classify_predicate",
    "eliminate_low_impact_dimensions",
    "measure_dimension_impacts",
    "measure_error_sensitivity",
    "select_error_dimensions",
    "sensitivity_error_dimensions",
    "PlanCostCache",
    "PlanDiagram",
    "coarse_subgrid",
    "ContourBandResult",
    "contour_focused_posp",
    "diagram_from_band",
    "DEFAULT_LAMBDA",
    "ReducedAssignment",
    "anorexic_reduce",
    "reduced_diagram",
    "ErrorDimension",
    "Location",
    "SelectivitySpace",
    "render_1d_profile",
    "render_2d_diagram",
    "render_slice",
]
