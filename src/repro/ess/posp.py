"""POSP generation, including the contour-focused exploration of §4.2.

The exhaustive method lives on :class:`~repro.ess.diagram.PlanDiagram`;
this module adds the paper's cheaper strategy: only a narrow band of
locations around each isocost contour is optimized, found by recursively
subdividing ESS hypercubes and pruning the ones no contour passes through
(a contour passes through a hypercube iff its cost lies within the cost
range established by the corners of the hypercube's principal diagonal —
valid because the PIC is monotone).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import numpy as np

from ..exceptions import EssError
from ..optimizer.optimizer import Optimizer
from .diagram import PlanCostCache, PlanDiagram
from .space import Location, SelectivitySpace


#: Compile engines understood by the ESS exploration entry points.
COMPILE_ENGINES = ("batch", "reference")

#: Slabs smaller than this run through the scalar optimizer even under
#: the batch engine: a DP run over a couple of locations pays more in
#: array setup than it saves, and both dispatches produce byte-identical
#: plans and costs, so the threshold is purely a latency choice.  The
#: contour-band exploration merges a whole subdivision level into one
#: slab, so its slabs are large and it uses the lower
#: :data:`MIN_BAND_SLAB` instead.
MIN_BATCH_SLAB = 8

#: Batch threshold for contour-band slabs.  Band slabs aggregate every
#: corner probe (or every leaf interior) of a subdivision level, so even
#: small ones amortize the DP's array setup — only a lone straggler
#: location stays scalar.
MIN_BAND_SLAB = 2


def resolve_engine(optimizer, engine: str) -> str:
    """Validate ``engine`` and degrade ``"batch"`` when unsupported.

    Duck-typed optimizer stand-ins (tests, external engine adapters) may
    implement only the scalar ``optimize``; they silently get the
    reference path, which is always correct — just slower.
    """
    if engine not in COMPILE_ENGINES:
        raise EssError(
            f"unknown compile engine {engine!r}; expected one of {COMPILE_ENGINES}"
        )
    if engine == "batch" and not hasattr(optimizer, "optimize_batch"):
        return "reference"
    return engine


@dataclass
class ContourBandResult:
    """Sparse POSP knowledge produced by the contour-focused exploration."""

    #: location -> (plan_id, optimal cost) for every optimized location.
    optimized: Dict[Location, Tuple[int, float]]
    #: Number of locations optimized (identical across engines).
    optimizer_calls: int
    #: Number of hypercubes pruned without optimizing their interior.
    pruned_boxes: int
    #: Engine that actually ran ("batch" may degrade to "reference").
    engine: str = "reference"
    #: Batch engine only: DP enumerations actually executed.
    slabs: int = 0
    #: Batch engine only: locations served by slab enumerations.
    batched_locations: int = 0

    @property
    def posp_plan_ids(self) -> List[int]:
        return sorted({plan_id for plan_id, _ in self.optimized.values()})


def contour_focused_posp(
    optimizer: Optimizer,
    space: SelectivitySpace,
    contour_costs: Sequence[float],
    min_box_edge: int = 2,
    engine: str = "batch",
) -> ContourBandResult:
    """Optimize only near the isocost contours.

    Parameters
    ----------
    contour_costs:
        The IC step costs (from :func:`repro.core.contours.contour_costs`).
    min_box_edge:
        Boxes whose longest edge is at most this are optimized exhaustively.
    engine:
        ``"batch"`` (default) optimizes each subdivision level as slabs
        through :meth:`Optimizer.optimize_batch`.  The hypercube tree is
        walked breadth-first, level-synchronously: all principal-diagonal
        corner probes of a level form one slab, then — after pruning and
        splitting — all leaf interiors of the level form another, so the
        DP's per-slab setup is amortized over the whole band instead of
        being paid per two-corner probe (slabs of at least
        :data:`MIN_BAND_SLAB` locations batch; a lone straggler stays
        scalar).  Both engines traverse identically and register plans
        in the same within-slab location order, so ``"reference"`` (one
        scalar optimize per location, the paper's literal procedure)
        produces a byte-identical ``optimized`` map, including plan ids.
    """
    if not contour_costs:
        raise EssError("contour_focused_posp needs at least one contour cost")
    engine = resolve_engine(optimizer, engine)
    sorted_costs = sorted(contour_costs)
    optimized: Dict[Location, Tuple[int, float]] = {}
    calls = 0
    pruned = 0
    slabs = 0
    batched = 0

    def optimize_slab(locations) -> None:
        """Optimize every uncached location, preserving visit order.

        Registration order is what keeps the engines byte-identical: the
        batch kernel registers slab winners in location order, which is
        precisely the order the reference loop would have registered
        them one scalar call at a time.
        """
        nonlocal calls, slabs, batched
        todo: List[Location] = []
        seen = set()
        for location in locations:
            if location not in optimized and location not in seen:
                seen.add(location)
                todo.append(location)
        if not todo:
            return
        if engine == "batch" and len(todo) >= MIN_BAND_SLAB:
            assignments = [space.assignment_at(location) for location in todo]
            results = optimizer.optimize_batch(space.query, assignments)
            for location, result in zip(todo, results):
                optimized[location] = (result.plan_id, result.cost)
            slabs += 1
            batched += len(todo)
        else:
            for location in todo:
                assignment = space.assignment_at(location)
                result = optimizer.optimize(space.query, assignment=assignment)
                optimized[location] = (result.plan_id, result.cost)
        calls += len(todo)

    def any_contour_in(clo: float, chi: float) -> bool:
        """Does any IC cost fall within [clo, chi]?"""
        i = np.searchsorted(sorted_costs, clo)
        return i < len(sorted_costs) and sorted_costs[i] <= chi

    def explore(root_lo: Location, root_hi: Location) -> None:
        """Level-synchronous BFS over the subdivision tree.

        Prune/leaf/split decisions depend only on each box's own corner
        costs and geometry — never on traversal order — so merging a
        level's probes (and its leaf interiors) into shared slabs visits
        exactly the boxes the depth-first recursion would, with the same
        prune count, while handing the batch kernel band-sized slabs.
        """
        nonlocal pruned
        frontier: List[Tuple[Location, Location]] = [(root_lo, root_hi)]
        while frontier:
            # Principal-diagonal corners bound the PIC over each box
            # (PCM); the whole level's corners form one slab.
            optimize_slab(
                corner for box in frontier for corner in box
            )
            next_frontier: List[Tuple[Location, Location]] = []
            leaves: List[Location] = []
            for lo, hi in frontier:
                _, cost_lo = optimized[lo]
                _, cost_hi = optimized[hi]
                # PCM says cost_lo <= cost_hi, but tie-breaking among
                # equal-cost plans can invert the pair by a whisker; an
                # inverted interval would silently prune the box and lose
                # its contour band, so the bounds are ordered explicitly
                # before the containment test.
                if not any_contour_in(min(cost_lo, cost_hi), max(cost_lo, cost_hi)):
                    pruned += 1
                    continue
                edges = [h - l for l, h in zip(lo, hi)]
                if max(edges) <= min_box_edge:
                    leaves.extend(
                        itertools.product(
                            *(range(l, h + 1) for l, h in zip(lo, hi))
                        )
                    )
                    continue
                # Split along the longest edge.
                axis = max(range(len(edges)), key=lambda d: edges[d])
                mid = (lo[axis] + hi[axis]) // 2
                lo_a, hi_a = list(lo), list(hi)
                hi_a[axis] = mid
                lo_b, hi_b = list(lo), list(hi)
                lo_b[axis] = mid  # midplane overlap keeps the band contiguous
                next_frontier.append((tuple(lo_a), tuple(hi_a)))
                next_frontier.append((tuple(lo_b), tuple(hi_b)))
            # All leaf interiors of the level form the second slab.
            optimize_slab(leaves)
            frontier = next_frontier

    with optimizer.tracer.span(
        "ess.contour_posp",
        locations=space.size,
        contours=len(sorted_costs),
        engine=engine,
    ) as span:
        explore(space.origin, space.corner)
        span.set(
            optimizer_calls=calls,
            pruned_boxes=pruned,
            slabs=slabs,
            batched_locations=batched,
        )
    return ContourBandResult(
        optimized=optimized,
        optimizer_calls=calls,
        pruned_boxes=pruned,
        engine=engine,
        slabs=slabs,
        batched_locations=batched,
    )


def diagram_from_band(
    optimizer: Optimizer,
    space: SelectivitySpace,
    band: ContourBandResult,
) -> PlanDiagram:
    """Densify a contour band into a full (approximate) plan diagram.

    The band's POSP plans are costed over the whole grid and the argmin
    taken — exact at every location the band optimized, interpolating
    plan choice elsewhere.
    """
    registry = optimizer.registry(space.query)
    cache = PlanCostCache(space, optimizer, registry)
    plan_ids_sorted = band.posp_plan_ids
    if not plan_ids_sorted:
        raise EssError("contour band contains no plans")
    stacked = np.stack([cache.cost_array(pid) for pid in plan_ids_sorted])
    argmin = np.argmin(stacked, axis=0)
    costs = np.min(stacked, axis=0)
    lookup = np.array(plan_ids_sorted, dtype=np.int64)
    plan_ids = lookup[argmin]
    # Band locations are authoritative: overwrite with the exact choices.
    for location, (plan_id, cost) in band.optimized.items():
        plan_ids[location] = plan_id
        costs[location] = cost
    return PlanDiagram(space, plan_ids, costs, registry, cache)
