"""POSP generation, including the contour-focused exploration of §4.2.

The exhaustive method lives on :class:`~repro.ess.diagram.PlanDiagram`;
this module adds the paper's cheaper strategy: only a narrow band of
locations around each isocost contour is optimized, found by recursively
subdividing ESS hypercubes and pruning the ones no contour passes through
(a contour passes through a hypercube iff its cost lies within the cost
range established by the corners of the hypercube's principal diagonal —
valid because the PIC is monotone).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import numpy as np

from ..exceptions import EssError
from ..optimizer.optimizer import Optimizer
from .diagram import PlanCostCache, PlanDiagram
from .space import Location, SelectivitySpace


@dataclass
class ContourBandResult:
    """Sparse POSP knowledge produced by the contour-focused exploration."""

    #: location -> (plan_id, optimal cost) for every optimized location.
    optimized: Dict[Location, Tuple[int, float]]
    #: Number of optimizer invocations spent.
    optimizer_calls: int
    #: Number of hypercubes pruned without optimizing their interior.
    pruned_boxes: int

    @property
    def posp_plan_ids(self) -> List[int]:
        return sorted({plan_id for plan_id, _ in self.optimized.values()})


def contour_focused_posp(
    optimizer: Optimizer,
    space: SelectivitySpace,
    contour_costs: Sequence[float],
    min_box_edge: int = 2,
) -> ContourBandResult:
    """Optimize only near the isocost contours.

    Parameters
    ----------
    contour_costs:
        The IC step costs (from :func:`repro.core.contours.contour_costs`).
    min_box_edge:
        Boxes whose longest edge is at most this are optimized exhaustively.
    """
    if not contour_costs:
        raise EssError("contour_focused_posp needs at least one contour cost")
    sorted_costs = sorted(contour_costs)
    optimized: Dict[Location, Tuple[int, float]] = {}
    calls = 0
    pruned = 0

    def optimize_at(location: Location) -> Tuple[int, float]:
        nonlocal calls
        cached = optimized.get(location)
        if cached is not None:
            return cached
        assignment = space.assignment_at(location)
        result = optimizer.optimize(space.query, assignment=assignment)
        calls += 1
        entry = (result.plan_id, result.cost)
        optimized[location] = entry
        return entry

    def any_contour_in(clo: float, chi: float) -> bool:
        """Does any IC cost fall within [clo, chi]?"""
        i = np.searchsorted(sorted_costs, clo)
        return i < len(sorted_costs) and sorted_costs[i] <= chi

    def recurse(lo: Location, hi: Location):
        nonlocal pruned
        # Principal-diagonal corners bound the PIC over the box (PCM).
        _, cost_lo = optimize_at(lo)
        _, cost_hi = optimize_at(hi)
        # PCM says cost_lo <= cost_hi, but tie-breaking among equal-cost
        # plans can invert the pair by a whisker; an inverted interval
        # would silently prune the box and lose its contour band, so the
        # bounds are ordered explicitly before the containment test.
        if not any_contour_in(min(cost_lo, cost_hi), max(cost_lo, cost_hi)):
            pruned += 1
            return
        edges = [h - l for l, h in zip(lo, hi)]
        if max(edges) <= min_box_edge:
            for location in itertools.product(
                *(range(l, h + 1) for l, h in zip(lo, hi))
            ):
                optimize_at(location)
            return
        # Split along the longest edge.
        axis = max(range(len(edges)), key=lambda d: edges[d])
        mid = (lo[axis] + hi[axis]) // 2
        lo_a, hi_a = list(lo), list(hi)
        hi_a[axis] = mid
        recurse(tuple(lo_a), tuple(hi_a))
        lo_b, hi_b = list(lo), list(hi)
        lo_b[axis] = mid  # overlap at the midplane keeps the band contiguous
        recurse(tuple(lo_b), tuple(hi_b))

    with optimizer.tracer.span(
        "ess.contour_posp", locations=space.size, contours=len(sorted_costs)
    ) as span:
        recurse(space.origin, space.corner)
        span.set(optimizer_calls=calls, pruned_boxes=pruned)
    return ContourBandResult(optimized=optimized, optimizer_calls=calls, pruned_boxes=pruned)


def diagram_from_band(
    optimizer: Optimizer,
    space: SelectivitySpace,
    band: ContourBandResult,
) -> PlanDiagram:
    """Densify a contour band into a full (approximate) plan diagram.

    The band's POSP plans are costed over the whole grid and the argmin
    taken — exact at every location the band optimized, interpolating
    plan choice elsewhere.
    """
    registry = optimizer.registry(space.query)
    cache = PlanCostCache(space, optimizer, registry)
    plan_ids_sorted = band.posp_plan_ids
    if not plan_ids_sorted:
        raise EssError("contour band contains no plans")
    stacked = np.stack([cache.cost_array(pid) for pid in plan_ids_sorted])
    argmin = np.argmin(stacked, axis=0)
    costs = np.min(stacked, axis=0)
    lookup = np.array(plan_ids_sorted, dtype=np.int64)
    plan_ids = lookup[argmin]
    # Band locations are authoritative: overwrite with the exact choices.
    for location, (plan_id, cost) in band.optimized.items():
        plan_ids[location] = plan_id
        costs[location] = cost
    return PlanDiagram(space, plan_ids, costs, registry, cache)
