"""The error-prone selectivity space (ESS).

The ESS is a D-dimensional grid of selectivity locations (§2): each
dimension is one error-prone predicate of the query, spanning a
log-spaced range of selectivities.  Every grid location corresponds to a
complete selectivity assignment (error dims from the grid, remaining
predicates from a fixed base assignment), i.e. to "a unique query".
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass
from typing import Iterator, List, Mapping, Sequence, Tuple

import numpy as np

from ..exceptions import EssError
from ..optimizer.selectivity import SelectivityAssignment
from ..query.query import Query

#: Grid index: one integer per ESS dimension.
Location = Tuple[int, ...]


@dataclass(frozen=True)
class ErrorDimension:
    """One error-prone selectivity dimension.

    ``lo``/``hi`` bound the selectivity range; for PK-FK join dimensions
    ``hi`` is typically the reciprocal of the PK relation's cardinality
    (§4.1's "schematic constraints").
    """

    pid: str
    lo: float
    hi: float
    label: str = ""

    def __post_init__(self):
        if not (0.0 < self.lo < self.hi <= 1.0):
            raise EssError(
                f"dimension {self.pid!r} needs 0 < lo < hi <= 1, "
                f"got [{self.lo}, {self.hi}]"
            )

    @property
    def name(self) -> str:
        return self.label or self.pid


class SelectivitySpace:
    """A discretized ESS grid for one query.

    Parameters
    ----------
    query:
        The query whose predicates the dimensions refer to.
    dimensions:
        Error-prone dimensions (each pid must be a predicate of the query).
    resolution:
        Grid points per dimension — an int (same for all) or one per dim.
    base_assignment:
        Selectivities for the query's *non*-error predicates (assumed
        accurately estimable, §8).  Error pids may appear; they are
        overridden by grid values.
    """

    def __init__(
        self,
        query: Query,
        dimensions: Sequence[ErrorDimension],
        resolution,
        base_assignment: Mapping[str, float],
    ):
        if not dimensions:
            raise EssError("ESS needs at least one dimension")
        self.query = query
        self.dimensions: Tuple[ErrorDimension, ...] = tuple(dimensions)
        pids = [dim.pid for dim in self.dimensions]
        if len(set(pids)) != len(pids):
            raise EssError("duplicate pid among ESS dimensions")
        for pid in pids:
            query.predicate(pid)  # validates existence
        if isinstance(resolution, int):
            resolutions = [resolution] * len(self.dimensions)
        else:
            resolutions = list(resolution)
        if len(resolutions) != len(self.dimensions):
            raise EssError("resolution list does not match dimension count")
        if any(r < 2 for r in resolutions):
            raise EssError("each dimension needs at least 2 grid points")
        self.shape: Tuple[int, ...] = tuple(resolutions)
        self.grids: List[np.ndarray] = [
            np.logspace(math.log10(dim.lo), math.log10(dim.hi), res)
            for dim, res in zip(self.dimensions, self.shape)
        ]
        self.base_assignment: SelectivityAssignment = dict(base_assignment)

    # ------------------------------------------------------------------

    @property
    def dimensionality(self) -> int:
        return len(self.dimensions)

    @property
    def size(self) -> int:
        return int(np.prod(self.shape))

    @property
    def origin(self) -> Location:
        return (0,) * self.dimensionality

    @property
    def corner(self) -> Location:
        """The top corner of the principal diagonal (max selectivities)."""
        return tuple(r - 1 for r in self.shape)

    def locations(self) -> Iterator[Location]:
        """Iterate over every grid location in row-major order."""
        return itertools.product(*(range(r) for r in self.shape))

    def selectivities_at(self, location: Location) -> Tuple[float, ...]:
        """Selectivity values of the error dims at a grid location."""
        self._check(location)
        return tuple(
            float(self.grids[d][i]) for d, i in enumerate(location)
        )

    def assignment_at(self, location: Location) -> SelectivityAssignment:
        """Full selectivity assignment (base + grid values) at a location."""
        assignment = dict(self.base_assignment)
        for dim, value in zip(self.dimensions, self.selectivities_at(location)):
            assignment[dim.pid] = value
        return assignment

    def assignment_for(self, values: Sequence[float]) -> SelectivityAssignment:
        """Assignment for arbitrary (continuous) dim values — used by the
        run-time q_run tracking, which moves between grid points."""
        if len(values) != self.dimensionality:
            raise EssError("value vector does not match dimensionality")
        assignment = dict(self.base_assignment)
        for dim, value in zip(self.dimensions, values):
            assignment[dim.pid] = float(min(dim.hi, max(dim.lo, value)))
        return assignment

    def snap(self, values: Sequence[float]) -> Location:
        """Grid location whose selectivities dominate ``values`` (ceil)."""
        if len(values) != self.dimensionality:
            raise EssError("value vector does not match dimensionality")
        idx = []
        for d, value in enumerate(values):
            grid = self.grids[d]
            i = int(np.searchsorted(grid, value * (1.0 - 1e-12), side="left"))
            idx.append(min(i, grid.size - 1))
        return tuple(idx)

    def nearest_location(self, values: Sequence[float]) -> Location:
        """Grid location closest to ``values`` in log space."""
        idx = []
        for d, value in enumerate(values):
            grid = self.grids[d]
            i = int(np.argmin(np.abs(np.log(grid) - math.log(max(value, 1e-300)))))
            idx.append(i)
        return tuple(idx)

    def dominates(self, a: Location, b: Location) -> bool:
        """True if location ``a`` >= ``b`` componentwise."""
        return all(x >= y for x, y in zip(a, b))

    def successors(self, location: Location) -> Iterator[Location]:
        """In-bounds +1 neighbours along each axis."""
        for d in range(self.dimensionality):
            if location[d] + 1 < self.shape[d]:
                yield location[:d] + (location[d] + 1,) + location[d + 1 :]

    def _check(self, location: Location):
        if len(location) != self.dimensionality:
            raise EssError(f"bad location arity: {location}")
        for d, i in enumerate(location):
            if not (0 <= i < self.shape[d]):
                raise EssError(f"location {location} outside grid {self.shape}")

    def describe(self) -> str:
        lines = [
            f"ESS for {self.query.name}: {self.dimensionality}D grid {self.shape}"
        ]
        for dim, res in zip(self.dimensions, self.shape):
            lines.append(
                f"  {dim.name}: [{dim.lo:.3g}, {dim.hi:.3g}] x {res} points"
            )
        return "\n".join(lines)
