"""Anorexic plan-diagram reduction (Harish et al., VLDB 2007; paper §3.3).

A plan *swallows* another plan's ESS locations if, at each of those
locations, the swallower's cost stays within ``(1 + λ)`` of the optimal
cost.  Greedy set-cover over the candidate plans brings plan cardinality
down to "anorexic levels" (around ten), which is what makes the
multi-dimensional MSO bound ``4·(1+λ)·ρ`` practical.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from ..exceptions import EssError
from .diagram import PlanDiagram
from .space import Location

#: Default anorexic cost-increase threshold (20%, per the paper).
DEFAULT_LAMBDA = 0.2


@dataclass
class ReducedAssignment:
    """Outcome of an anorexic reduction over a set of locations."""

    #: location -> plan id after swallowing.
    assignment: Dict[Location, int]
    #: The surviving plan set.
    plan_ids: List[int]
    #: λ used.
    lambda_: float

    @property
    def cardinality(self) -> int:
        return len(self.plan_ids)


def anorexic_reduce(
    diagram: PlanDiagram,
    locations: Optional[Iterable[Location]] = None,
    lambda_: float = DEFAULT_LAMBDA,
    candidate_ids: Optional[Sequence[int]] = None,
) -> ReducedAssignment:
    """Greedy swallowing over ``locations`` (default: the whole grid).

    Each location ends up assigned to a plan whose cost there is at most
    ``(1 + λ)`` times the optimal cost; the greedy objective is to use as
    few distinct plans as possible (largest-coverage-first set cover,
    ties broken by total cost so cheaper plans win).
    """
    if lambda_ < 0:
        raise EssError("anorexic λ must be non-negative")
    cache = diagram.cache
    if cache is None:
        raise EssError("diagram lacks a PlanCostCache; cannot reduce")
    if locations is None:
        location_list = list(diagram.space.locations())
    else:
        location_list = list(locations)
    if not location_list:
        raise EssError("no locations to reduce")
    if candidate_ids is None:
        candidate_ids = diagram.posp_plan_ids

    threshold = 1.0 + lambda_
    optimal = np.array([diagram.cost_at(loc) for loc in location_list])
    # coverage[p][i] == True when plan p may own location_list[i].
    coverage: Dict[int, np.ndarray] = {}
    cost_rows: Dict[int, np.ndarray] = {}
    for plan_id in candidate_ids:
        array = cache.cost_array(plan_id)
        costs = np.array([array[loc] for loc in location_list])
        coverage[plan_id] = costs <= threshold * optimal + 1e-12
        cost_rows[plan_id] = costs

    tracer = cache.optimizer.tracer
    span = tracer.span(
        "ess.reduce",
        lambda_=lambda_,
        locations=len(location_list),
        candidates=len(candidate_ids),
    )
    uncovered = np.ones(len(location_list), dtype=bool)
    assignment: Dict[Location, int] = {}
    chosen: List[int] = []
    while uncovered.any():
        best_plan = None
        best_gain = -1
        best_cost = np.inf
        for plan_id in candidate_ids:
            if plan_id in chosen:
                continue
            covered = coverage[plan_id] & uncovered
            gain = int(covered.sum())
            if gain == 0:
                continue
            total_cost = float(cost_rows[plan_id][covered].sum())
            if gain > best_gain or (gain == best_gain and total_cost < best_cost):
                best_plan, best_gain, best_cost = plan_id, gain, total_cost
        if best_plan is None:
            # Shouldn't happen: the optimal plan always covers its own
            # locations.  Guard against numerical corner cases anyway.
            idx = int(np.argmax(uncovered))
            location = location_list[idx]
            fallback = diagram.plan_at(location)
            assignment[location] = fallback
            if fallback not in chosen:
                chosen.append(fallback)
            uncovered[idx] = False
            continue
        chosen.append(best_plan)
        newly = coverage[best_plan] & uncovered
        if tracer.enabled:
            tracer.event("ess.swallow", plan=best_plan, swallowed=int(newly.sum()))
        for idx in np.nonzero(newly)[0]:
            assignment[location_list[int(idx)]] = best_plan
        uncovered &= ~newly
    surviving = sorted(set(assignment.values()))
    span.set(surviving=len(surviving), passes=len(chosen))
    span.end()
    return ReducedAssignment(
        assignment=assignment, plan_ids=surviving, lambda_=lambda_
    )


def reduced_diagram(
    diagram: PlanDiagram, lambda_: float = DEFAULT_LAMBDA
) -> Tuple[PlanDiagram, ReducedAssignment]:
    """Anorexic-reduce the full diagram, returning a new diagram whose
    plan choices are the post-swallowing owners (costs stay optimal)."""
    reduction = anorexic_reduce(diagram, lambda_=lambda_)
    plan_ids = diagram.plan_ids.copy()
    for location, plan_id in reduction.assignment.items():
        plan_ids[location] = plan_id
    new = PlanDiagram(
        diagram.space, plan_ids, diagram.costs, diagram.registry, diagram.cache
    )
    return new, reduction
