"""ASCII rendering of plan diagrams, PIC profiles, and contours.

Picasso-flavoured visualizations for terminals and docs: 1D spaces
render as an annotated cost profile; 2D spaces as a plan-region map with
optional isocost contour overlays.  Higher dimensions render as 2D
slices.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

import numpy as np

from ..exceptions import EssError
from .diagram import PlanDiagram

#: Glyphs used for plan regions, in assignment order.
_GLYPHS = "0123456789abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ"


def render_1d_profile(
    diagram: PlanDiagram, width: int = 64, height: int = 16
) -> str:
    """Render a 1D PIC as a log-log ASCII curve with plan annotations.

    Mirrors Figure 3's layout: cost on the y axis (log), selectivity on
    the x axis (log), the curve marked with each region's plan glyph.
    """
    if diagram.space.dimensionality != 1:
        raise EssError("render_1d_profile needs a 1D diagram")
    costs = diagram.costs
    n = costs.size
    xs = np.linspace(0, n - 1, min(width, n)).round().astype(int)
    log_costs = np.log10(costs[xs])
    lo, hi = float(log_costs.min()), float(log_costs.max())
    span = max(hi - lo, 1e-9)
    glyph_of = _glyph_map(diagram)
    canvas = [[" "] * len(xs) for _ in range(height)]
    for col, grid_idx in enumerate(xs):
        level = (np.log10(costs[grid_idx]) - lo) / span
        row = height - 1 - int(round(level * (height - 1)))
        canvas[row][col] = glyph_of[diagram.plan_at((int(grid_idx),))]
    lines = ["".join(row).rstrip() for row in canvas]
    lines.append("-" * len(xs))
    legend = _legend(diagram, glyph_of)
    lines.append(
        f"x: selectivity {diagram.space.grids[0][0]:.3g} .. "
        f"{diagram.space.grids[0][-1]:.3g} (log)   "
        f"y: cost {costs.min():.3g} .. {costs.max():.3g} (log)"
    )
    lines.append(legend)
    return "\n".join(lines)


def render_2d_diagram(
    diagram: PlanDiagram,
    contour_costs: Optional[Sequence[float]] = None,
    max_size: int = 48,
) -> str:
    """Render a 2D plan diagram as a glyph map (Picasso style).

    Each cell shows the plan owning that ESS location; when
    ``contour_costs`` is given, cells on a contour frontier are rendered
    as ``*`` instead, showing where the isocost surfaces cut the space.
    The y axis (dimension 0) grows upward, the x axis (dimension 1)
    rightward — matching Figure 6's orientation.
    """
    if diagram.space.dimensionality != 2:
        raise EssError("render_2d_diagram needs a 2D diagram")
    rows, cols = diagram.space.shape
    if rows > max_size or cols > max_size:
        raise EssError(f"diagram too large to render (> {max_size} per side)")
    glyph_of = _glyph_map(diagram)
    on_contour = set()
    if contour_costs:
        from ..core.contours import maximal_region_frontier

        for ic in contour_costs:
            on_contour.update(maximal_region_frontier(diagram.costs, ic))
    lines = []
    for i in reversed(range(rows)):
        cells = []
        for j in range(cols):
            if (i, j) in on_contour:
                cells.append("*")
            else:
                cells.append(glyph_of[diagram.plan_at((i, j))])
        lines.append("".join(cells))
    lines.append("-" * cols)
    lines.append(_legend(diagram, glyph_of))
    if contour_costs:
        lines.append("* = isocost contour frontier")
    return "\n".join(lines)


def render_slice(
    diagram: PlanDiagram,
    axes: Tuple[int, int] = (0, 1),
    fixed: Optional[dict] = None,
) -> str:
    """Render a 2D slice of a higher-dimensional diagram.

    ``axes`` selects the two free dimensions; every other dimension is
    pinned to the index given in ``fixed`` (default 0).
    """
    space = diagram.space
    d = space.dimensionality
    if d < 2:
        raise EssError("render_slice needs at least 2 dimensions")
    ax_y, ax_x = axes
    if ax_y == ax_x or not (0 <= ax_y < d and 0 <= ax_x < d):
        raise EssError(f"bad slice axes {axes} for a {d}D space")
    fixed = dict(fixed or {})
    glyph_of = _glyph_map(diagram)
    lines = []
    for i in reversed(range(space.shape[ax_y])):
        cells = []
        for j in range(space.shape[ax_x]):
            location = []
            for dim in range(d):
                if dim == ax_y:
                    location.append(i)
                elif dim == ax_x:
                    location.append(j)
                else:
                    location.append(int(fixed.get(dim, 0)))
            cells.append(glyph_of[diagram.plan_at(tuple(location))])
        lines.append("".join(cells))
    lines.append("-" * space.shape[ax_x])
    lines.append(_legend(diagram, glyph_of))
    lines.append(
        f"slice: y=dim{ax_y} ({space.dimensions[ax_y].name}), "
        f"x=dim{ax_x} ({space.dimensions[ax_x].name})"
    )
    return "\n".join(lines)


def _glyph_map(diagram: PlanDiagram) -> dict:
    posp = diagram.posp_plan_ids
    if len(posp) > len(_GLYPHS):
        raise EssError(f"too many plans to render ({len(posp)})")
    return {plan_id: _GLYPHS[i] for i, plan_id in enumerate(posp)}


def _legend(diagram: PlanDiagram, glyph_of: dict) -> str:
    entries = [f"{glyph}=P{plan_id}" for plan_id, glyph in glyph_of.items()]
    return "legend: " + " ".join(entries)
