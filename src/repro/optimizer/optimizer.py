"""Optimizer facade: optimize a query at any selectivity point.

This is the "optimizer with selectivity injection" of §4.2.  The facade
owns a per-query :class:`~repro.optimizer.joinorder.JoinEnumerator` cache
and a :class:`PlanRegistry` so structurally identical plans returned at
different ESS points share one identity (P1, P2, ...), exactly as in the
paper's POSP figures.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from ..catalog.schema import Schema
from ..catalog.statistics import DatabaseStatistics
from ..exceptions import OptimizerError
from ..obs.tracer import NULL_TRACER, Tracer
from ..query.query import Query
from .cost_model import POSTGRES_COST_MODEL, CostModel
from .joinorder import JoinEnumerator
from .plans import Aggregate, NodeEstimate, PlanNode, cost_plan
from .selectivity import (
    SelectivityAssignment,
    estimate_selectivities,
    inject,
    validate_assignment,
)


@dataclass
class OptimizedPlan:
    """Result of one optimizer call."""

    plan: PlanNode
    cost: float
    rows: float
    plan_id: int
    signature: str

    @property
    def label(self) -> str:
        return f"P{self.plan_id}"


class PlanRegistry:
    """Assigns small stable integer ids to distinct plan signatures.

    Structurally identical plans registered from different ESS grid
    locations (or by different compile engines) deduplicate onto one id
    via the plan's canonical signature, which keeps POSP sets and the
    anorexic-reduction input small.  The registry is shared by parallel
    compile workers, so registration and lookup are guarded by a lock;
    ids are assigned strictly in first-registration order, which is what
    makes batch and scalar compiles produce identical id maps.
    """

    def __init__(self):
        self._ids: Dict[str, int] = {}
        self._plans: Dict[int, PlanNode] = {}
        self._lock = threading.Lock()

    def __getstate__(self):
        state = self.__dict__.copy()
        state.pop("_lock", None)
        return state

    def __setstate__(self, state):
        self.__dict__.update(state)
        self._lock = threading.Lock()

    def register(self, plan: PlanNode) -> Tuple[int, str]:
        signature = plan.canonical_signature()
        with self._lock:
            plan_id = self._ids.get(signature)
            if plan_id is None:
                plan_id = len(self._ids) + 1
                self._ids[signature] = plan_id
                self._plans[plan_id] = plan
        return plan_id, signature

    def plan(self, plan_id: int) -> PlanNode:
        with self._lock:
            try:
                return self._plans[plan_id]
            except KeyError:
                raise OptimizerError(f"unknown plan id {plan_id}") from None

    def canonical(self, plan: PlanNode) -> PlanNode:
        """The registry's canonical instance for a structurally identical
        plan (registering it first if unseen) — lets callers share one
        object per plan shape across grid locations."""
        plan_id, _ = self.register(plan)
        return self.plan(plan_id)

    def __len__(self):
        with self._lock:
            return len(self._ids)

    @property
    def plan_ids(self) -> List[int]:
        with self._lock:
            return sorted(self._plans)


class Optimizer:
    """Cost-based optimizer with selectivity injection.

    Parameters
    ----------
    schema:
        Catalog the queries run against.
    statistics:
        Optimizer statistics used for the *estimated* (non-injected)
        selectivities.  May be ``None``, in which case magic numbers apply.
    cost_model:
        Cost constants; swap in ``COMMERCIAL_COST_MODEL`` for the COM engine.
    tracer:
        Optional :class:`~repro.obs.tracer.Tracer`; every ``optimize``
        call is counted and timed, enumerator/registry cache behaviour is
        counted.  Defaults to the zero-overhead null tracer.
    """

    def __init__(
        self,
        schema: Schema,
        statistics: Optional[DatabaseStatistics] = None,
        cost_model: CostModel = POSTGRES_COST_MODEL,
        tracer: Optional[Tracer] = None,
    ):
        self.schema = schema
        self.statistics = statistics
        self.cost_model = cost_model
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self._enumerators: Dict[str, JoinEnumerator] = {}
        self._registries: Dict[str, PlanRegistry] = {}

    def __getstate__(self):
        # Tracers hold sinks (possibly open files); they degrade to the
        # null tracer across process boundaries (parallel POSP workers).
        state = self.__dict__.copy()
        state["tracer"] = None
        return state

    def __setstate__(self, state):
        self.__dict__.update(state)
        if self.tracer is None:
            self.tracer = NULL_TRACER

    # ------------------------------------------------------------------

    def registry(self, query: Query) -> PlanRegistry:
        """Plan registry shared by every optimization of ``query``."""
        key = query.fingerprint
        registry = self._registries.get(key)
        if registry is None:
            registry = PlanRegistry()
            self._registries[key] = registry
        return registry

    def _enumerator(self, query: Query) -> JoinEnumerator:
        key = query.fingerprint
        enum = self._enumerators.get(key)
        if enum is None:
            enum = JoinEnumerator(query, self.schema)
            self._enumerators[key] = enum
            if self.tracer.enabled:
                self.tracer.count("optimizer.enumerator_builds")
        elif self.tracer.enabled:
            self.tracer.count("optimizer.enumerator_cache_hits")
        return enum

    # ------------------------------------------------------------------

    def estimated_assignment(self, query: Query) -> SelectivityAssignment:
        """The native optimizer's estimated selectivities for the query."""
        return estimate_selectivities(query, self.statistics)

    def optimize(
        self,
        query: Query,
        assignment: Optional[Mapping[str, float]] = None,
        injected: Optional[Mapping[str, float]] = None,
    ) -> OptimizedPlan:
        """Find the cheapest plan.

        ``assignment`` supplies a full pid -> selectivity map; if omitted,
        estimated selectivities are used.  ``injected`` overrides specific
        pids on top of that base (the injection API of §4.2).
        """
        tracer = self.tracer
        t0 = time.perf_counter() if tracer.enabled else 0.0
        if assignment is None:
            assignment = self.estimated_assignment(query)
        if injected:
            assignment = inject(assignment, injected)
        validate_assignment(query, assignment)
        if len(query.tables) == 1:
            plan, cost, rows = self._best_single_table(query, assignment)
        else:
            plan, cost, rows = self._enumerator(query).best_plan(
                self.cost_model, assignment
            )
        if query.aggregate:
            plan = Aggregate(plan, query.group_by)
            est = cost_plan(plan, self.schema, self.cost_model, assignment)
            cost, rows = est.cost, est.rows
        plan_id, signature = self.registry(query).register(plan)
        if tracer.enabled:
            tracer.count("optimizer.calls")
            tracer.observe("optimizer.latency", time.perf_counter() - t0)
        return OptimizedPlan(
            plan=plan, cost=cost, rows=rows, plan_id=plan_id, signature=signature
        )

    def optimize_batch(
        self,
        query: Query,
        assignments: Sequence[Mapping[str, float]],
    ) -> List[OptimizedPlan]:
        """Find the cheapest plan at every assignment of a slab at once.

        Runs the DPsize enumeration **once** while carrying a numpy cost
        axis over the slab (:mod:`repro.batchopt`): per connected subset
        the DP keeps a frontier of plans that are cheapest at >= 1
        location, so ``optimize_batch(A)[i]`` equals
        ``optimize(query, A[i])`` — same plan id, same cost — for every
        ``i``.  Plans are registered in slab order, so a batch compile
        assigns the same plan ids a scalar sweep over the same location
        order would.
        """
        from ..batchopt.kernel import (
            batch_best_plans,
            stack_assignments,
            validate_columns,
        )

        if not assignments:
            return []
        tracer = self.tracer
        t0 = time.perf_counter() if tracer.enabled else 0.0
        columns, length = stack_assignments(assignments)
        validate_columns(query, columns, length)
        enumerator = self._enumerator(query) if len(query.tables) > 1 else None
        choice = batch_best_plans(
            query, self.schema, self.cost_model, columns, length, enumerator
        )
        registry = self.registry(query)
        registered: Dict[int, Tuple[int, str]] = {}
        results: List[OptimizedPlan] = []
        for index in range(length):
            frontier_index = int(choice.winner[index])
            entry = registered.get(frontier_index)
            if entry is None:
                entry = registry.register(choice.plans[frontier_index])
                registered[frontier_index] = entry
            plan_id, signature = entry
            results.append(
                OptimizedPlan(
                    plan=choice.plans[frontier_index],
                    cost=float(choice.cost[index]),
                    rows=float(choice.rows[index]),
                    plan_id=plan_id,
                    signature=signature,
                )
            )
        if tracer.enabled:
            tracer.count("optimizer.batch_calls")
            tracer.count("optimizer.batched_locations", length)
            tracer.count("batchopt.slabs")
            tracer.count("batchopt.locations", length)
            tracer.count("batchopt.frontier_plans", choice.frontier_size)
            tracer.observe("optimizer.batch_latency", time.perf_counter() - t0)
        return results

    def _best_single_table(
        self, query: Query, assignment: Mapping[str, float]
    ) -> Tuple[PlanNode, float, float]:
        from .joinorder import access_paths

        best = None
        for path in access_paths(query, query.tables[0]):
            est = cost_plan(path, self.schema, self.cost_model, assignment)
            if best is None or est.cost < best[1]:
                best = (path, est.cost, est.rows)
        if best is None:
            raise OptimizerError("no access path for single-table query")
        return best

    # ------------------------------------------------------------------

    def cost(
        self, query: Query, plan: PlanNode, assignment: Mapping[str, float]
    ) -> NodeEstimate:
        """Abstract plan costing: cost an arbitrary plan at a point."""
        validate_assignment(query, assignment)
        return cost_plan(plan, self.schema, self.cost_model, assignment)
