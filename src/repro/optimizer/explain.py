"""EXPLAIN-style plan rendering.

Pretty-prints a plan tree with per-node cardinality and cost estimates at
a given selectivity assignment — the human-facing counterpart of abstract
plan costing, handy in examples, debugging, and the bouquet's
``describe`` output.
"""

from __future__ import annotations

from typing import List, Mapping

from ..catalog.schema import Schema
from .cost_model import CostModel
from .plans import (
    Aggregate,
    CostContext,
    IndexLookup,
    IndexScan,
    Join,
    PlanNode,
    SeqScan,
)

_NODE_LABEL = {
    "hash": "Hash Join",
    "merge": "Merge Join",
    "nl": "Nested Loop",
    "inl": "Index Nested Loop",
}


def explain(
    plan: PlanNode,
    schema: Schema,
    cost_model: CostModel,
    assignment: Mapping[str, float],
) -> str:
    """Render a plan tree with estimated rows and cumulative costs."""
    ctx = CostContext(schema, cost_model, assignment)
    lines: List[str] = []
    _walk(plan, ctx, lines, depth=0)
    return "\n".join(lines)


def _describe_node(node: PlanNode) -> str:
    if isinstance(node, SeqScan):
        filters = f" filter: {', '.join(node.filter_pids)}" if node.filter_pids else ""
        return f"Seq Scan on {node.table}{filters}"
    if isinstance(node, IndexScan):
        residual = (
            f" filter: {', '.join(node.filter_pids)}" if node.filter_pids else ""
        )
        return f"Index Scan on {node.table} cond: {node.index_pid}{residual}"
    if isinstance(node, IndexLookup):
        residual = (
            f" filter: {', '.join(node.filter_pids)}" if node.filter_pids else ""
        )
        return f"Index Lookup on {node.table}.{node.lookup_column}{residual}"
    if isinstance(node, Join):
        label = _NODE_LABEL[node.algo]
        return f"{label} cond: {', '.join(node.join_pids)}"
    if isinstance(node, Aggregate):
        if node.group_columns:
            groups = ", ".join(f"{t}.{c}" for t, c in node.group_columns)
            return f"HashAggregate group by: {groups}"
        return "Aggregate count(*)"
    return node.signature()


def _walk(node: PlanNode, ctx: CostContext, lines: List[str], depth: int):
    indent = "  " * depth
    arrow = "-> " if depth else ""
    if isinstance(node, IndexLookup):
        # Costed only through its parent INL join.
        lines.append(f"{indent}{arrow}{_describe_node(node)}")
    else:
        est = node.estimate(ctx)
        lines.append(
            f"{indent}{arrow}{_describe_node(node)}  "
            f"(rows={est.rows:.0f} cost={est.cost:.1f})"
        )
    for child in node.children:
        _walk(child, ctx, lines, depth + 1)
