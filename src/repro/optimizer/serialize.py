"""Plan-tree (de)serialization.

Plans are structural objects, so they round-trip through plain dicts /
JSON.  Used to persist compiled bouquets for the paper's "canned query"
scenario (§4.2), where the expensive compile-time phase is run offline
and reused across invocations.
"""

from __future__ import annotations

from typing import Any, Dict

from ..exceptions import OptimizerError
from .plans import Aggregate, IndexLookup, IndexScan, Join, PlanNode, SeqScan


def plan_to_dict(plan: PlanNode) -> Dict[str, Any]:
    """Serialize a plan tree to a JSON-friendly dict."""
    if isinstance(plan, SeqScan):
        return {
            "node": "seq_scan",
            "table": plan.table,
            "filters": list(plan.filter_pids),
        }
    if isinstance(plan, IndexScan):
        return {
            "node": "index_scan",
            "table": plan.table,
            "index_pid": plan.index_pid,
            "filters": list(plan.filter_pids),
        }
    if isinstance(plan, IndexLookup):
        return {
            "node": "index_lookup",
            "table": plan.table,
            "column": plan.lookup_column,
            "filters": list(plan.filter_pids),
        }
    if isinstance(plan, Join):
        return {
            "node": "join",
            "algo": plan.algo,
            "join_pids": list(plan.join_pids),
            "left": plan_to_dict(plan.left),
            "right": plan_to_dict(plan.right),
        }
    if isinstance(plan, Aggregate):
        return {
            "node": "aggregate",
            "group_columns": [list(gc) for gc in plan.group_columns],
            "child": plan_to_dict(plan.child),
        }
    raise OptimizerError(f"cannot serialize node {plan.signature()}")


def plan_from_dict(data: Dict[str, Any]) -> PlanNode:
    """Reconstruct a plan tree from :func:`plan_to_dict` output."""
    kind = data.get("node")
    if kind == "seq_scan":
        return SeqScan(data["table"], tuple(data.get("filters", ())))
    if kind == "index_scan":
        return IndexScan(
            data["table"], data["index_pid"], tuple(data.get("filters", ()))
        )
    if kind == "index_lookup":
        return IndexLookup(
            data["table"], data["column"], tuple(data.get("filters", ()))
        )
    if kind == "join":
        return Join(
            data["algo"],
            plan_from_dict(data["left"]),
            plan_from_dict(data["right"]),
            tuple(data["join_pids"]),
        )
    if kind == "aggregate":
        return Aggregate(
            plan_from_dict(data["child"]),
            tuple(tuple(gc) for gc in data.get("group_columns", ())),
        )
    raise OptimizerError(f"unknown serialized node kind {kind!r}")
