"""Physical plan trees and abstract plan costing.

Plans are immutable operator trees.  Costing is *parametric*: a plan can be
costed at any selectivity assignment (`abstract plan costing`, the engine
facility the bouquet technique leans on, §5.4).  All formulas are monotone
non-decreasing in every selectivity, so Plan Cost Monotonicity (PCM) holds
by construction — the assumption underlying the bouquet guarantees (§2).

Operator inventory: sequential scan, index scan, index lookup (inner side
of an index nested-loop join), and four join algorithms (materialized
nested loops, hash, sort-merge, index nested loops).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Mapping, Optional, Tuple

import numpy as np

from ..catalog.schema import IndexInfo, Schema
from ..exceptions import OptimizerError
from .cost_model import CostModel


@dataclass(frozen=True)
class NodeEstimate:
    """Output cardinality and cumulative cost of a plan node.

    Fields are floats for point costing, or numpy arrays when the
    assignment maps pids to arrays — the same formulas then evaluate the
    plan over a whole grid of selectivity points at once (vectorized
    abstract plan costing)."""

    rows: float
    cost: float


class CostContext:
    """Everything needed to cost a plan at one point in selectivity space.

    The assignment may map pids to scalars (point costing) or to 1-D
    numpy arrays (slab costing): every operator formula is plain
    elementwise arithmetic, so an array-valued context evaluates a plan
    at a whole slab of ESS locations in one pass.  :meth:`for_slab` is
    the explicit batch entry point used by :mod:`repro.batchopt`.
    """

    def __init__(
        self,
        schema: Schema,
        cost_model: CostModel,
        assignment: Mapping[str, float],
    ):
        self.schema = schema
        self.cost_model = cost_model
        self.assignment = assignment
        # Memo holds (node, estimate): keeping a strong reference to the
        # node guarantees its id() is not recycled for a different node
        # within this context's lifetime.
        self._memo: Dict[int, Tuple[PlanNode, NodeEstimate]] = {}

    @classmethod
    def for_slab(
        cls,
        schema: Schema,
        cost_model: CostModel,
        columns: Mapping[str, object],
    ) -> "CostContext":
        """Array-valued costing context over a slab of ESS locations.

        ``columns`` maps each pid to either a python float (the pid is
        constant over the slab) or a 1-D array of per-location
        selectivities.  Estimates memoize whole arrays per node, so a
        frontier plan shared by many DP candidates is costed once.
        """
        return cls(schema, cost_model, columns)

    def selectivity(self, pid: str) -> float:
        try:
            return self.assignment[pid]
        except KeyError:
            raise OptimizerError(f"no selectivity for predicate {pid!r}") from None

    def product(self, pids) -> float:
        result = 1.0
        for pid in pids:
            result *= self.selectivity(pid)
        return result


class PlanNode:
    """Base class for plan operators."""

    #: Child operators (leaf nodes have none).
    children: Tuple["PlanNode", ...] = ()

    # -- identity ------------------------------------------------------

    def signature(self) -> str:
        """Stable structural identity; two plans with equal signatures are
        the same plan for POSP/bouquet purposes."""
        raise NotImplementedError

    def canonical_signature(self) -> str:
        """Memoized :meth:`signature`.

        Plan trees are immutable after construction, so the signature is
        computed once and cached on the instance.  The batch compile
        kernel registers the same frontier plan for many grid locations;
        the cache turns those repeat registrations into a dict hit
        instead of an O(tree) string rebuild.
        """
        sig = getattr(self, "_signature_cache", None)
        if sig is None:
            sig = self.signature()
            self._signature_cache = sig
        return sig

    # -- metadata ------------------------------------------------------

    @property
    def local_pids(self) -> FrozenSet[str]:
        """Predicates evaluated *at* this node."""
        raise NotImplementedError

    def all_pids(self) -> FrozenSet[str]:
        pids = set(self.local_pids)
        for child in self.children:
            pids |= child.all_pids()
        return frozenset(pids)

    def tables(self) -> FrozenSet[str]:
        raise NotImplementedError

    # -- costing -------------------------------------------------------

    def estimate(self, ctx: CostContext) -> NodeEstimate:
        cached = ctx._memo.get(id(self))
        if cached is not None:
            return cached[1]
        result = self._estimate(ctx)
        # Memoized estimates are shared by every plan that embeds this
        # node; freeze array fields so an accidental in-place update in a
        # parent's formula raises instead of corrupting the slab memo.
        for field in (result.rows, result.cost):
            if isinstance(field, np.ndarray):
                field.setflags(write=False)
        ctx._memo[id(self)] = (self, result)
        return result

    def _estimate(self, ctx: CostContext) -> NodeEstimate:
        raise NotImplementedError

    # -- traversal -----------------------------------------------------

    def postorder(self):
        """Yield nodes in execution order (children before parents)."""
        for child in self.children:
            yield from child.postorder()
        yield self

    def depth(self) -> int:
        """Height of the subtree rooted here."""
        if not self.children:
            return 1
        return 1 + max(child.depth() for child in self.children)

    def __repr__(self):
        return self.signature()


class SeqScan(PlanNode):
    """Full sequential scan of a base table with conjunctive filters."""

    def __init__(self, table: str, filter_pids: Tuple[str, ...] = ()):
        self.table = table
        self.filter_pids = tuple(sorted(filter_pids))

    def signature(self):
        filters = ",".join(self.filter_pids)
        return f"SS({self.table}|{filters})"

    @property
    def local_pids(self):
        return frozenset(self.filter_pids)

    def tables(self):
        return frozenset((self.table,))

    def _estimate(self, ctx):
        table = ctx.schema.table(self.table)
        model = ctx.cost_model
        rows_in = float(table.row_count)
        cost = table.pages * model.seq_page_cost
        cost += rows_in * model.cpu_tuple_cost
        cost += rows_in * len(self.filter_pids) * model.cpu_operator_cost
        rows_out = rows_in * ctx.product(self.filter_pids)
        return NodeEstimate(rows=rows_out, cost=cost)


class IndexScan(PlanNode):
    """B-tree index scan driven by one selection predicate.

    ``index_pid`` is the predicate satisfied via the index; remaining
    filters are applied to fetched heap rows.  Heap fetches are charged as
    random page reads, so the scan loses to :class:`SeqScan` at high
    selectivity — which is what makes the POSP set non-trivial.
    """

    def __init__(self, table: str, index_pid: str, filter_pids: Tuple[str, ...] = ()):
        self.table = table
        self.index_pid = index_pid
        self.filter_pids = tuple(sorted(filter_pids))

    def signature(self):
        filters = ",".join(self.filter_pids)
        return f"IS({self.table}:{self.index_pid}|{filters})"

    @property
    def local_pids(self):
        return frozenset((self.index_pid,) + self.filter_pids)

    def tables(self):
        return frozenset((self.table,))

    def _estimate(self, ctx):
        table = ctx.schema.table(self.table)
        model = ctx.cost_model
        sel = ctx.selectivity(self.index_pid)
        matched = table.row_count * sel
        index = IndexInfo.for_table(table, self.index_pid)
        cost = index.height * model.random_page_cost
        cost += sel * index.leaf_pages * model.seq_page_cost
        cost += matched * model.cpu_index_tuple_cost
        cost += matched * model.random_page_cost  # heap fetches (uncorrelated)
        cost += matched * model.cpu_tuple_cost
        cost += matched * len(self.filter_pids) * model.cpu_operator_cost
        rows_out = matched * ctx.product(self.filter_pids)
        return NodeEstimate(rows=rows_out, cost=cost)


class IndexLookup(PlanNode):
    """Inner side of an index nested-loop join: per-outer-tuple lookups.

    Never costed standalone; :class:`Join` with ``algo='inl'`` folds the
    per-lookup cost into the join formula.  For the same reason its
    ``local_pids`` are empty: the residual ``filter_pids`` are evaluated
    per-lookup *by the enclosing join*, which reports them — so spill
    machinery (``first_error_node``) targets the join, the smallest
    subtree that can actually be costed or executed.
    """

    def __init__(self, table: str, lookup_column: str, filter_pids: Tuple[str, ...] = ()):
        self.table = table
        self.lookup_column = lookup_column
        self.filter_pids = tuple(sorted(filter_pids))

    def signature(self):
        filters = ",".join(self.filter_pids)
        return f"IXL({self.table}.{self.lookup_column}|{filters})"

    @property
    def local_pids(self):
        return frozenset()

    def tables(self):
        return frozenset((self.table,))

    def _estimate(self, ctx):
        raise OptimizerError("IndexLookup cannot be costed outside an INL join")


class Aggregate(PlanNode):
    """Hash aggregation: COUNT(*) per group (global count when no groups).

    Output cardinality is capped by the product of the group columns'
    distinct-value hints (falling back to their tables' row counts), and
    is therefore monotone non-decreasing in every selectivity — PCM is
    preserved.
    """

    def __init__(self, child: PlanNode, group_columns: Tuple[Tuple[str, str], ...] = ()):
        if isinstance(child, IndexLookup):
            raise OptimizerError("aggregate cannot consume an IndexLookup")
        self.child = child
        self.group_columns = tuple(sorted(group_columns))
        self.children = (child,)

    def signature(self):
        groups = ",".join(f"{t}.{c}" for t, c in self.group_columns)
        return f"AGG({self.child.signature()}|{groups})"

    @property
    def local_pids(self):
        return frozenset()

    def tables(self):
        return self.child.tables()

    def group_limit(self, ctx: CostContext) -> float:
        """Upper bound on the number of groups."""
        limit = 1.0
        for table, column in self.group_columns:
            col = ctx.schema.table(table).column(column)
            hint = col.distinct
            limit *= float(hint if hint else ctx.schema.table(table).row_count)
        return limit

    def _estimate(self, ctx):
        model = ctx.cost_model
        child = self.child.estimate(ctx)
        if self.group_columns:
            rows_out = np.minimum(child.rows, self.group_limit(ctx))
        else:
            rows_out = 1.0
        # Binary + first: ``child.cost`` may be a memoized array shared
        # with other plans in a slab context, so the running total must
        # start as a fresh object before any in-place accumulation.
        cost = child.cost + child.rows * (
            model.hash_tuple_cost + len(self.group_columns) * model.cpu_operator_cost
        )
        cost += rows_out * model.cpu_tuple_cost
        return NodeEstimate(rows=rows_out, cost=cost)


#: Join algorithm tags.
JOIN_ALGOS = ("hash", "merge", "nl", "inl")

_ALGO_LABEL = {"hash": "HJ", "merge": "MJ", "nl": "NL", "inl": "INL"}


class Join(PlanNode):
    """A binary join.

    Conventions: for ``hash`` the right child is the build side; for
    ``nl`` the right child is materialized and rescanned; for ``inl`` the
    right child must be an :class:`IndexLookup`.
    """

    def __init__(
        self,
        algo: str,
        left: PlanNode,
        right: PlanNode,
        join_pids: Tuple[str, ...],
    ):
        if algo not in JOIN_ALGOS:
            raise OptimizerError(f"unknown join algorithm {algo!r}")
        if algo == "inl" and not isinstance(right, IndexLookup):
            raise OptimizerError("inl join requires an IndexLookup inner side")
        if algo != "inl" and isinstance(right, IndexLookup):
            raise OptimizerError(f"{algo} join cannot consume an IndexLookup")
        if not join_pids:
            raise OptimizerError("join requires at least one join predicate")
        self.algo = algo
        self.left = left
        self.right = right
        self.join_pids = tuple(sorted(join_pids))
        self.children = (left, right)

    def signature(self):
        label = _ALGO_LABEL[self.algo]
        return f"{label}({self.left.signature()},{self.right.signature()})"

    @property
    def local_pids(self):
        # An INL join also evaluates the inner side's residual filters
        # (per-lookup); IndexLookup itself reports none — see its docs.
        if self.algo == "inl":
            inner: IndexLookup = self.right  # type: ignore[assignment]
            return frozenset(self.join_pids) | frozenset(inner.filter_pids)
        return frozenset(self.join_pids)

    def tables(self):
        return self.left.tables() | self.right.tables()

    def _estimate(self, ctx):
        model = ctx.cost_model
        join_sel = ctx.product(self.join_pids)
        left = self.left.estimate(ctx)

        if self.algo == "inl":
            inner: IndexLookup = self.right  # type: ignore[assignment]
            table = ctx.schema.table(inner.table)
            matched_per_outer = join_sel * table.row_count
            residual_sel = ctx.product(inner.filter_pids)
            rows_out = left.rows * matched_per_outer * residual_sel
            per_lookup = model.random_page_cost  # B-tree descent to leaf
            per_match = (
                model.cpu_index_tuple_cost
                + model.random_page_cost  # heap fetch
                + model.cpu_tuple_cost
                + len(inner.filter_pids) * model.cpu_operator_cost
            )
            # Binary + first (see Aggregate): never ``+=`` onto the
            # memoized child cost, which may be a shared slab array.
            cost = left.cost + left.rows * per_lookup
            cost += left.rows * matched_per_outer * per_match
            cost += rows_out * model.cpu_tuple_cost
            return NodeEstimate(rows=rows_out, cost=cost)

        right = self.right.estimate(ctx)
        rows_out = join_sel * left.rows * right.rows
        if self.algo == "hash":
            cost = left.cost + right.cost
            cost += right.rows * model.hash_tuple_cost  # build
            cost += left.rows * model.hash_tuple_cost  # probe
            cost += rows_out * model.cpu_tuple_cost
        elif self.algo == "merge":
            cost = left.cost + right.cost
            cost += model.sort_cost(left.rows) + model.sort_cost(right.rows)
            cost += (left.rows + right.rows) * model.cpu_operator_cost
            cost += rows_out * model.cpu_tuple_cost
        elif self.algo == "nl":
            cost = left.cost + right.cost
            cost += right.rows * model.cpu_tuple_cost  # materialize inner
            cost += left.rows * right.rows * model.cpu_operator_cost
            cost += rows_out * model.cpu_tuple_cost
        else:  # pragma: no cover - guarded in __init__
            raise OptimizerError(f"unhandled join algorithm {self.algo!r}")
        return NodeEstimate(rows=rows_out, cost=cost)


def _sort_cost(rows, model: CostModel):
    # Kept as an alias; the formula lives on CostModel so scalar and
    # batch costing share one (vectorizable) implementation.
    return model.sort_cost(rows)


# ---------------------------------------------------------------------------
# Plan-level helpers
# ---------------------------------------------------------------------------


def cost_plan(
    plan: PlanNode,
    schema: Schema,
    cost_model: CostModel,
    assignment: Mapping[str, float],
) -> NodeEstimate:
    """Cost a complete plan at one selectivity assignment."""
    ctx = CostContext(schema, cost_model, assignment)
    return plan.estimate(ctx)


def first_error_node(
    plan: PlanNode, error_pids: FrozenSet[str]
) -> Optional[PlanNode]:
    """First node in execution (post-) order that evaluates an error pid.

    Its subtree is error-free below it, so its output tuple count yields an
    exact lower bound for the error selectivities evaluated at the node —
    the basis of the selectivity-monitoring machinery of §5.2.
    """
    for node in plan.postorder():
        if node.local_pids & error_pids:
            return node
    return None


def error_node_depth(plan: PlanNode, error_pids: FrozenSet[str]) -> int:
    """Depth (from the root, root=0) of the deepest error-prone node.

    Used by the AxisPlans heuristic: deeper error nodes mean less budget is
    wasted on error-free upstream work.  Returns -1 if no error node.
    """
    best = -1

    def walk(node: PlanNode, depth: int):
        nonlocal best
        if node.local_pids & error_pids:
            best = max(best, depth)
        for child in node.children:
            walk(child, depth + 1)

    walk(plan, 0)
    return best


def spilled_cost(
    plan: PlanNode,
    schema: Schema,
    cost_model: CostModel,
    assignment: Mapping[str, float],
    error_pids: FrozenSet[str],
) -> Tuple[float, FrozenSet[str]]:
    """Cost of the *spilled* execution of ``plan`` (§5.3).

    The pipeline is broken immediately after the first error-prone node and
    its output discarded, so only that node's subtree is executed.  Returns
    ``(cost, learned_pids)`` where ``learned_pids`` are the error pids whose
    selectivities the spilled run measures.  Falls back to the full plan
    cost when the plan has no error-prone node.
    """
    node = first_error_node(plan, error_pids)
    if node is None:
        est = cost_plan(plan, schema, cost_model, assignment)
        return est.cost, frozenset()
    ctx = CostContext(schema, cost_model, assignment)
    est = node.estimate(ctx)
    return est.cost, node.local_pids & error_pids


def plan_tables_in_order(plan: PlanNode) -> List[str]:
    """Base tables in execution order (for display)."""
    tables: List[str] = []
    for node in plan.postorder():
        if isinstance(node, (SeqScan, IndexScan, IndexLookup)):
            tables.append(node.table)
    return tables
