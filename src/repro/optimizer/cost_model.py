"""Cost models: the optimizer's currency.

The primary model mirrors PostgreSQL's disk/CPU constants; a second
configuration ("COM") stands in for the commercial engine of the paper's
§6.8 — same formulas, different constants and operator preferences, which
is exactly the kind of variation that distinguishes real engines.

All operator cost formulas live with the plan nodes
(:mod:`repro.optimizer.plans`); this module only owns the constants, so a
cost model is a plain, comparable value object.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np


@dataclass(frozen=True)
class CostModel:
    """Cost constants, PostgreSQL-style.

    The unit is "one sequential page read" = 1.0, as in PostgreSQL.
    """

    name: str = "postgres"
    seq_page_cost: float = 1.0
    random_page_cost: float = 4.0
    cpu_tuple_cost: float = 0.01
    cpu_index_tuple_cost: float = 0.005
    cpu_operator_cost: float = 0.0025
    #: Per-tuple cost of inserting into / probing a hash table.
    hash_tuple_cost: float = 0.012
    #: Multiplier on n*log2(n) comparisons for sorting.
    sort_cpu_factor: float = 0.0075
    #: Whether the engine considers sort-merge joins at all.
    enable_mergejoin: bool = True
    #: Whether the engine considers (materialized) nested-loop joins.
    enable_nestloop: bool = True

    def with_overrides(self, **kwargs) -> "CostModel":
        """Return a copy with some constants replaced."""
        return replace(self, **kwargs)

    def sort_cost(self, rows):
        """CPU cost of sorting ``rows`` tuples (n·log2 n comparisons).

        Array-valued entry point: ``rows`` may be a scalar or a numpy
        array of cardinalities (one per ESS location), in which case the
        formula evaluates elementwise — the batch compile kernel and the
        vectorized cost-field sweeps both lean on this.
        """
        return self.sort_cpu_factor * rows * np.log2(rows + 2.0)


#: The default, PostgreSQL-flavoured cost model used throughout.
POSTGRES_COST_MODEL = CostModel()

#: A "commercial engine" flavour: SSD-ish random reads, pricier CPU ops,
#: and a stronger preference for hash joins (merge join disabled), giving a
#: genuinely different plan space for the Figure 19 experiment.
COMMERCIAL_COST_MODEL = CostModel(
    name="com",
    seq_page_cost=1.0,
    random_page_cost=2.0,
    cpu_tuple_cost=0.02,
    cpu_index_tuple_cost=0.004,
    cpu_operator_cost=0.0015,
    hash_tuple_cost=0.008,
    sort_cpu_factor=0.0125,
    enable_mergejoin=False,
    enable_nestloop=True,
)
