"""Cost-based optimizer with selectivity injection."""

from .cost_model import COMMERCIAL_COST_MODEL, POSTGRES_COST_MODEL, CostModel
from .explain import explain
from .serialize import plan_from_dict, plan_to_dict
from .optimizer import OptimizedPlan, Optimizer, PlanRegistry
from .plans import (
    Aggregate,
    IndexLookup,
    IndexScan,
    Join,
    NodeEstimate,
    PlanNode,
    SeqScan,
    cost_plan,
    error_node_depth,
    first_error_node,
    spilled_cost,
)
from .selectivity import (
    SelectivityAssignment,
    actual_selectivities,
    estimate_selectivities,
    inject,
    validate_assignment,
)

__all__ = [
    "Aggregate",
    "explain",
    "plan_from_dict",
    "plan_to_dict",
    "COMMERCIAL_COST_MODEL",
    "POSTGRES_COST_MODEL",
    "CostModel",
    "OptimizedPlan",
    "Optimizer",
    "PlanRegistry",
    "IndexLookup",
    "IndexScan",
    "Join",
    "NodeEstimate",
    "PlanNode",
    "SeqScan",
    "cost_plan",
    "error_node_depth",
    "first_error_node",
    "spilled_cost",
    "SelectivityAssignment",
    "actual_selectivities",
    "estimate_selectivities",
    "inject",
    "validate_assignment",
]
