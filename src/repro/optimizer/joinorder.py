"""System-R style dynamic-programming join enumeration.

DPsize over connected subgraphs of the query's join graph (no cross
products).  For every subset the cheapest plan is kept; physical
alternatives considered at each join are hash (both build sides), sort
merge, materialized nested loops, and index nested loops when the inner
side is a single base table with an index on its join column.
"""

from __future__ import annotations

from itertools import combinations
from typing import Dict, FrozenSet, List, Mapping, Tuple

from ..catalog.schema import Schema
from ..exceptions import OptimizerError
from ..query.query import Query
from .cost_model import CostModel
from .plans import (
    CostContext,
    IndexLookup,
    IndexScan,
    Join,
    PlanNode,
    SeqScan,
)


def access_paths(query: Query, table: str) -> List[PlanNode]:
    """Candidate access paths for one base table.

    Always a sequential scan; plus, for every selection predicate on an
    indexed column, an index scan driven by that predicate with the
    remaining selections as residual filters.
    """
    selections = query.selections_on(table)
    all_pids = tuple(sel.pid for sel in selections)
    paths: List[PlanNode] = [SeqScan(table, all_pids)]
    for sel in selections:
        if sel.indexable and query.schema.has_index(table, sel.column):
            residuals = tuple(pid for pid in all_pids if pid != sel.pid)
            paths.append(IndexScan(table, sel.pid, residuals))
    return paths


def _index_lookup_inner(query: Query, table: str, join_column: str) -> IndexLookup:
    """INL inner side: index lookup on the join column, residual filters."""
    residuals = tuple(sel.pid for sel in query.selections_on(table))
    return IndexLookup(table, join_column, residuals)


class JoinEnumerator:
    """DP join-order search for one query.

    The enumerator is constructed once per query; :meth:`best_plan` re-runs
    the DP for each selectivity assignment (plan choice depends on the
    selectivities, which is the whole point of POSP generation).
    """

    def __init__(self, query: Query, schema: Schema):
        if not query.tables:
            raise OptimizerError("query has no tables")
        self.query = query
        self.schema = schema
        self._tables = tuple(sorted(query.tables))
        self._access_paths: Dict[str, List[PlanNode]] = {
            table: access_paths(query, table) for table in self._tables
        }
        # Precompute connected subsets and their (left, right) partitions.
        self._partitions = self._connected_partitions()

    # ------------------------------------------------------------------
    # Public structure (shared with the batch kernel, repro.batchopt)
    # ------------------------------------------------------------------

    @property
    def tables(self) -> Tuple[str, ...]:
        """Base tables in the canonical (sorted) enumeration order."""
        return self._tables

    @property
    def partitions(
        self,
    ) -> Dict[FrozenSet[str], List[Tuple[FrozenSet[str], FrozenSet[str], Tuple[str, ...]]]]:
        """Connected (left, right, join_pids) splits, keyed by subset."""
        return self._partitions

    def access_path_candidates(self, table: str) -> List[PlanNode]:
        """Access-path candidates for one base table, in DP order."""
        return self._access_paths[table]

    # ------------------------------------------------------------------
    # Static structure
    # ------------------------------------------------------------------

    def _connected_subsets(self) -> List[FrozenSet[str]]:
        graph = self.query.join_graph
        subsets = []
        n = len(self._tables)
        for size in range(1, n + 1):
            for combo in combinations(self._tables, size):
                subset = frozenset(combo)
                if size == 1 or graph.is_connected(subset):
                    subsets.append(subset)
        return subsets

    def _connected_partitions(
        self,
    ) -> Dict[FrozenSet[str], List[Tuple[FrozenSet[str], FrozenSet[str], Tuple[str, ...]]]]:
        """For each connected subset, all (left, right, join_pids) splits.

        Both halves must be connected and joined by at least one predicate.
        Each unordered split appears once; the DP tries both orientations.
        """
        graph = self.query.join_graph
        connected = set(self._connected_subsets())
        partitions: Dict[
            FrozenSet[str], List[Tuple[FrozenSet[str], FrozenSet[str], Tuple[str, ...]]]
        ] = {}
        for subset in connected:
            if len(subset) < 2:
                continue
            ordered = sorted(subset)
            splits = []
            seen = set()
            # Enumerate proper non-empty subsets; fix the first element to
            # the left side to halve the work.
            rest = ordered[1:]
            first = ordered[0]
            for size in range(0, len(rest) + 1):
                for combo in combinations(rest, size):
                    left = frozenset((first,) + combo)
                    right = subset - left
                    if not right:
                        continue
                    if left not in connected or right not in connected:
                        continue
                    joins = graph.joins_connecting(left, right)
                    if not joins:
                        continue
                    key = (left, right)
                    if key in seen:
                        continue
                    seen.add(key)
                    pids = tuple(sorted(j.pid for j in joins))
                    splits.append((left, right, pids))
            partitions[subset] = splits
        return partitions

    # ------------------------------------------------------------------
    # DP search
    # ------------------------------------------------------------------

    def best_plan(
        self, cost_model: CostModel, assignment: Mapping[str, float]
    ) -> Tuple[PlanNode, float, float]:
        """Cheapest plan at ``assignment``; returns ``(plan, cost, rows)``."""
        ctx = CostContext(self.schema, cost_model, assignment)
        best: Dict[FrozenSet[str], Tuple[PlanNode, float, float]] = {}

        for table in self._tables:
            candidates = self._access_paths[table]
            entry = None
            for path in candidates:
                est = path.estimate(ctx)
                if entry is None or est.cost < entry[1]:
                    entry = (path, est.cost, est.rows)
            best[frozenset((table,))] = entry

        subsets_by_size: Dict[int, List[FrozenSet[str]]] = {}
        for subset in self._partitions:
            subsets_by_size.setdefault(len(subset), []).append(subset)

        for size in range(2, len(self._tables) + 1):
            for subset in subsets_by_size.get(size, []):
                entry = None
                for left_set, right_set, join_pids in self._partitions[subset]:
                    left = best.get(left_set)
                    right = best.get(right_set)
                    if left is None or right is None:
                        continue
                    for plan in self.join_candidates(
                        left[0], right[0], left_set, right_set, join_pids, cost_model
                    ):
                        est = plan.estimate(ctx)
                        if entry is None or est.cost < entry[1]:
                            entry = (plan, est.cost, est.rows)
                if entry is None:
                    raise OptimizerError(
                        f"no join plan found for subset {sorted(subset)}"
                    )
                best[subset] = entry

        top = best.get(frozenset(self._tables))
        if top is None:
            raise OptimizerError("join enumeration failed to cover all tables")
        return top

    def join_candidates(
        self,
        left_plan: PlanNode,
        right_plan: PlanNode,
        left_set: FrozenSet[str],
        right_set: FrozenSet[str],
        join_pids: Tuple[str, ...],
        cost_model: CostModel,
    ) -> List[PlanNode]:
        """Physical join alternatives for one (left, right) split.

        The candidate *order* is part of the optimizer's contract: the
        scalar DP and the batch kernel both resolve cost ties by keeping
        the first candidate seen, so they must enumerate identically.
        """
        plans: List[PlanNode] = [
            Join("hash", left_plan, right_plan, join_pids),
            Join("hash", right_plan, left_plan, join_pids),
        ]
        if cost_model.enable_mergejoin:
            plans.append(Join("merge", left_plan, right_plan, join_pids))
        if cost_model.enable_nestloop:
            plans.append(Join("nl", left_plan, right_plan, join_pids))
            plans.append(Join("nl", right_plan, left_plan, join_pids))
        # Index nested loops: inner must be a lone base table with an index
        # on its join column, and a single join predicate drives the lookup.
        if len(join_pids) == 1:
            join = self.query.predicate(join_pids[0])
            for outer_plan, outer_set, inner_set in (
                (left_plan, left_set, right_set),
                (right_plan, right_set, left_set),
            ):
                if len(inner_set) != 1:
                    continue
                (inner_table,) = inner_set
                column = join.column_for(inner_table)
                if not self.schema.has_index(inner_table, column):
                    continue
                inner = _index_lookup_inner(self.query, inner_table, column)
                plans.append(Join("inl", outer_plan, inner, join_pids))
        return plans
