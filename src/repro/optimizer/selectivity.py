"""Selectivity assignments: estimated, actual, and injected.

A *selectivity assignment* maps predicate ids (pids) to selectivities in
``(0, 1]``.  Three sources exist:

* :func:`estimate_selectivities` — what a native optimizer believes, from
  (possibly stale) statistics, AVI and magic numbers.  This is the NAT
  baseline's world view.
* :func:`actual_selectivities` — ground truth measured on the data.
* :func:`inject` — overriding chosen pids with arbitrary values, the
  "selectivity injection" facility of §4.2 that the whole ESS/POSP
  machinery is built on.
"""

from __future__ import annotations

from typing import Dict, Mapping, Optional

from ..catalog.statistics import (
    MAGIC_EQUALITY_SELECTIVITY,
    MAGIC_RANGE_SELECTIVITY,
    DatabaseStatistics,
)
from ..datagen.database import Database
from ..exceptions import QueryError
from ..query.predicates import JoinPredicate, SelectionPredicate
from ..query.query import Query

#: Selectivities are clamped to this floor to keep cost functions finite.
MIN_SELECTIVITY = 1e-9

SelectivityAssignment = Dict[str, float]


def _clamp(value: float) -> float:
    return min(1.0, max(MIN_SELECTIVITY, value))


def estimate_selection(
    pred: SelectionPredicate, stats: Optional[DatabaseStatistics]
) -> float:
    """Estimate a selection predicate from statistics (or magic numbers)."""
    col_stats = None if stats is None else stats.column(pred.table, pred.column)
    if col_stats is None:
        if pred.is_range:
            magic = MAGIC_RANGE_SELECTIVITY
        elif pred.op == "in":
            magic = MAGIC_EQUALITY_SELECTIVITY * len(pred.value)
        else:
            magic = MAGIC_EQUALITY_SELECTIVITY
        return _clamp(magic)
    if pred.op == "=":
        return _clamp(col_stats.equality_selectivity(pred.value))
    if pred.op == "in":
        total = sum(col_stats.equality_selectivity(v) for v in pred.value)
        return _clamp(total)
    return _clamp(col_stats.range_selectivity(pred.op, pred.value))


def estimate_join(pred: JoinPredicate, stats: Optional[DatabaseStatistics]) -> float:
    """Estimate an equi-join selectivity as ``1 / max(ndv_left, ndv_right)``.

    This is the textbook (and PostgreSQL) formula; it is exact for clean
    PK-FK joins where the whole PK side participates, and wrong otherwise —
    which is why join selectivities dominate the paper's error dimensions.
    """
    left_stats = None if stats is None else stats.column(pred.left_table, pred.left_column)
    right_stats = None if stats is None else stats.column(pred.right_table, pred.right_column)
    ndvs = []
    if left_stats is not None:
        ndvs.append(max(1, left_stats.n_distinct))
    if right_stats is not None:
        ndvs.append(max(1, right_stats.n_distinct))
    if not ndvs:
        return _clamp(MAGIC_EQUALITY_SELECTIVITY)
    return _clamp(1.0 / max(ndvs))


def estimate_selectivities(
    query: Query, stats: Optional[DatabaseStatistics]
) -> SelectivityAssignment:
    """Full estimated assignment for a query (the NAT world view).

    Conjunctions are combined downstream under AVI (attribute-value
    independence) simply because each pid is estimated independently here.
    """
    assignment: SelectivityAssignment = {}
    for sel in query.selections:
        assignment[sel.pid] = estimate_selection(sel, stats)
    for join in query.joins:
        assignment[join.pid] = estimate_join(join, stats)
    return assignment


def actual_selectivities(query: Query, database: Database) -> SelectivityAssignment:
    """Ground-truth assignment measured directly on the data."""
    assignment: SelectivityAssignment = {}
    for sel in query.selections:
        assignment[sel.pid] = _clamp(
            database.actual_selection_selectivity(sel.table, sel.column, sel.op, sel.value)
        )
    for join in query.joins:
        assignment[join.pid] = _clamp(
            database.actual_join_selectivity(
                join.left_table, join.left_column, join.right_table, join.right_column
            )
        )
    return assignment


def inject(
    base: Mapping[str, float], overrides: Mapping[str, float]
) -> SelectivityAssignment:
    """Overlay injected selectivities on a base assignment.

    Raises if an override names a pid absent from the base assignment —
    injections must target real predicates of the query.
    """
    merged: SelectivityAssignment = dict(base)
    for pid, value in overrides.items():
        if pid not in merged:
            raise QueryError(f"cannot inject unknown predicate {pid!r}")
        merged[pid] = _clamp(value)
    return merged


def validate_assignment(query: Query, assignment: Mapping[str, float]):
    """Check an assignment covers every predicate of ``query`` exactly."""
    expected = set(query.predicate_ids)
    got = set(assignment)
    if expected - got:
        missing = ", ".join(sorted(expected - got))
        raise QueryError(f"assignment is missing selectivities for: {missing}")
    for pid, value in assignment.items():
        if not (0.0 < value <= 1.0):
            raise QueryError(f"selectivity for {pid!r} out of (0, 1]: {value}")
