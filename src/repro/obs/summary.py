"""Trace summarization: turn a record stream into a per-contour account.

Consumes the records produced by :mod:`repro.obs.tracer` (from a JSONL
file or a :class:`~repro.obs.tracer.MemorySink`) and condenses them into
the paper's Table 3 vocabulary: per isocost contour, how many plans were
executed (spilled vs full), under what budget, what they spent, and what
was learned — plus the compile-side account (optimizer calls, pruning,
reduction) and the metric aggregates.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional

__all__ = [
    "ContourAccount",
    "ServingSummary",
    "TraceSummary",
    "read_trace",
    "summarize_serving",
    "summarize_trace",
]


@dataclass
class ContourAccount:
    """Execution account for one isocost contour (one Table 3 row)."""

    contour: int
    budget: float = 0.0
    executions: int = 0
    spilled: int = 0
    cost_spent: float = 0.0
    completed: bool = False
    final_plan_id: Optional[int] = None
    learned_pids: List[str] = field(default_factory=list)

    @property
    def full(self) -> int:
        return self.executions - self.spilled


@dataclass
class TraceSummary:
    """Everything ``repro trace`` reports about one trace."""

    contours: List[ContourAccount]
    total_cost: float
    execution_count: int
    completed: bool
    final_plan_id: Optional[int]
    counters: Dict[str, float]
    timings: Dict[str, Dict[str, float]]
    spans: List[Dict[str, Any]]

    def describe(self) -> str:
        from ..bench.reporting import format_table

        lines: List[str] = []
        if self.contours:
            rows = []
            for acct in self.contours:
                rows.append(
                    [
                        f"IC{acct.contour}",
                        acct.budget,
                        acct.executions,
                        acct.spilled,
                        acct.full,
                        acct.cost_spent,
                        ",".join(acct.learned_pids) or "-",
                        (
                            f"completed (P{acct.final_plan_id})"
                            if acct.completed
                            else "crossed"
                        ),
                    ]
                )
            lines.append(
                format_table(
                    [
                        "contour",
                        "budget",
                        "execs",
                        "spilled",
                        "full",
                        "cost spent",
                        "learned",
                        "outcome",
                    ],
                    rows,
                    title="per-contour execution account",
                )
            )
            status = (
                f"completed with P{self.final_plan_id}"
                if self.completed
                else "did not complete"
            )
            lines.append(
                f"total: {self.execution_count} executions, "
                f"cost {self.total_cost:.4g} — {status}"
            )
        else:
            lines.append("no bouquet executions in trace")
        top = [s for s in self.spans if s.get("parent", 0) == 0]
        if top:
            rows = [
                [s["name"], f"{s.get('dur', 0.0):.4f}s", _attr_blurb(s.get("attrs", {}))]
                for s in top
            ]
            lines.append("")
            lines.append(format_table(["span", "wall", "attrs"], rows, title="root spans"))
        if self.counters:
            lines.append("")
            lines.append(
                format_table(
                    ["counter", "value"],
                    sorted(self.counters.items()),
                    title="counters",
                )
            )
        if self.timings:
            rows = [
                [name, t["count"], t["total"], t["mean"], t["max"]]
                for name, t in sorted(self.timings.items())
            ]
            lines.append("")
            lines.append(
                format_table(
                    ["timing", "count", "total s", "mean s", "max s"],
                    rows,
                    title="timings",
                )
            )
        scalar = self.counters.get("optimizer.calls", 0)
        batched = self.counters.get("optimizer.batched_locations", 0)
        if scalar or batched:
            lines.append("")
            lines.append(
                f"optimizer account: {scalar + batched:g} locations planned "
                f"({scalar:g} scalar calls, {batched:g} batched across "
                f"{self.counters.get('optimizer.batch_calls', 0):g} slab runs)"
            )
        return "\n".join(lines)


def _attr_blurb(attrs: Dict[str, Any], limit: int = 4) -> str:
    parts = []
    for key in sorted(attrs):
        value = attrs[key]
        if isinstance(value, float):
            value = f"{value:.4g}"
        parts.append(f"{key}={value}")
        if len(parts) >= limit:
            break
    return " ".join(parts)


@dataclass
class ServingSummary:
    """Everything ``repro serve-stats`` reports about a serving trace.

    Built from the ``serve.*`` counters plus the serve-side spans; the
    cache ladder (memory → disk → compile → coalesce) and the
    degradation tail (timeouts, failures, NAT fallbacks) each get a
    line.
    """

    counters: Dict[str, float] = field(default_factory=dict)
    compile_spans: int = 0
    compile_seconds: float = 0.0
    execute_spans: int = 0
    execute_seconds: float = 0.0
    rebind_spans: int = 0
    rebind_seconds: float = 0.0

    def _c(self, name: str) -> float:
        return self.counters.get(name, 0)

    @property
    def requests(self) -> float:
        return self._c("serve.requests")

    @property
    def optimizer_calls(self) -> float:
        """Scalar one-location-at-a-time optimizer invocations."""
        return self._c("optimizer.calls")

    @property
    def batched_locations(self) -> float:
        """ESS locations costed through the batch DP engine's slabs."""
        return self._c("optimizer.batched_locations")

    @property
    def optimized_locations(self) -> float:
        """Total locations planned, whichever compile engine ran them."""
        return self.optimizer_calls + self.batched_locations

    @property
    def front_requests(self) -> float:
        """Requests that entered the multi-tenant gateway."""
        return self._c("serve.front.requests")

    @property
    def front_shed(self) -> float:
        return self._c("serve.front.shed.quota") + self._c(
            "serve.front.shed.queue"
        )

    @property
    def lookups(self) -> float:
        return (
            self._c("serve.cache.hit_memory")
            + self._c("serve.cache.hit_disk")
            + self._c("serve.cache.miss")
        )

    @property
    def hit_rate(self) -> float:
        lookups = self.lookups
        if not lookups:
            return 0.0
        return (
            self._c("serve.cache.hit_memory") + self._c("serve.cache.hit_disk")
        ) / lookups

    @property
    def template_lookups(self) -> float:
        return self._c("serve.template.hits") + self._c("serve.template.misses")

    @property
    def template_hit_rate(self) -> float:
        lookups = self.template_lookups
        if not lookups:
            return 0.0
        return self._c("serve.template.hits") / lookups

    @property
    def pool_runs(self) -> float:
        """Fan-outs dispatched through the repro.par worker pool."""
        return self._c("par.pool.runs")

    @property
    def pool_reuse_rate(self) -> float:
        """Fraction of pool fan-outs that reused already-warm workers."""
        if not self.pool_runs:
            return 0.0
        return self._c("par.pool.reuse") / self.pool_runs

    @property
    def payload_cache_hit_rate(self) -> float:
        """Per-worker payload ships avoided by the content-digest cache."""
        total = self._c("par.payload.ships") + self._c("par.payload.cache_hits")
        if not total:
            return 0.0
        return self._c("par.payload.cache_hits") / total

    @property
    def rebind_latency(self) -> float:
        """Mean wall seconds per template rebind attempt."""
        if not self.rebind_spans:
            return 0.0
        return self.rebind_seconds / self.rebind_spans

    def describe(self) -> str:
        from ..bench.reporting import format_table

        cache_rows = [
            ["memory hits", self._c("serve.cache.hit_memory")],
            ["disk hits", self._c("serve.cache.hit_disk")],
            ["misses", self._c("serve.cache.miss")],
            ["hit rate", f"{self.hit_rate:.0%}"],
            ["stores", self._c("serve.cache.store")],
            ["evictions", self._c("serve.cache.evict")],
            ["invalidated", self._c("serve.cache.invalidated")],
            ["coalesced compiles", self._c("serve.singleflight.coalesced")],
        ]
        request_rows = [
            ["requests", self.requests],
            ["served ok", self._c("serve.served_ok")],
            ["degraded (NAT)", self._c("serve.degraded")],
            ["budget exhausted", self._c("serve.budget_exhausted")],
            ["failed", self._c("serve.failed")],
            ["compile timeouts", self._c("serve.compile_timeouts")],
            ["compile failures", self._c("serve.compile_failures")],
        ]
        lines = [
            format_table(["cache", "value"], cache_rows, title="artifact cache"),
            "",
            format_table(["requests", "value"], request_rows, title="request ladder"),
        ]
        if self.template_lookups or self._c("serve.template.stores"):
            template_rows = [
                ["hits", self._c("serve.template.hits")],
                ["misses", self._c("serve.template.misses")],
                ["hit rate", f"{self.template_hit_rate:.0%}"],
                ["rebinds", self._c("serve.template.rebinds")],
                ["fallbacks", self._c("serve.template.fallbacks")],
                ["coalesced", self._c("serve.template.coalesced")],
                ["stores", self._c("serve.template.stores")],
                [
                    "rebind latency",
                    f"{self.rebind_latency * 1e3:.2f} ms"
                    if self.rebind_spans
                    else "-",
                ],
            ]
            lines.append("")
            lines.append(
                format_table(
                    ["template", "value"],
                    template_rows,
                    title="template cache",
                )
            )
        if self.front_requests:
            completed = sorted(
                (name.rsplit(".", 1)[1], value)
                for name, value in self.counters.items()
                if name.startswith("serve.front.completed.")
            )
            front_rows = [
                ["requests", self.front_requests],
                ["admitted", self._c("serve.front.admitted")],
                ["invalid", self._c("serve.front.invalid")],
                ["shed (quota)", self._c("serve.front.shed.quota")],
                ["shed (queue full)", self._c("serve.front.shed.queue")],
                ["degraded by overload", self._c("serve.front.degraded_overload")],
            ] + [[f"completed {status}", value] for status, value in completed]
            lines.append("")
            lines.append(
                format_table(
                    ["front-end", "value"],
                    front_rows,
                    title="admission / shedding",
                )
            )
        if self.pool_runs:
            par_rows = [
                ["pool starts", self._c("par.pool.starts")],
                ["pool runs", self.pool_runs],
                ["pool reuse rate", f"{self.pool_reuse_rate:.0%}"],
                ["tasks", self._c("par.tasks")],
                ["payload ships", self._c("par.payload.ships")],
                ["payload cache hits", self._c("par.payload.cache_hits")],
                ["payload cache hit rate", f"{self.payload_cache_hit_rate:.0%}"],
                ["shm planes exported", self._c("par.shm.exports")],
            ]
            lines.append("")
            lines.append(
                format_table(
                    ["parallel", "value"],
                    par_rows,
                    title="parallel substrate",
                )
            )
        if self.compile_spans or self.execute_spans:
            lines.append("")
            lines.append(
                format_table(
                    ["phase", "count", "total s"],
                    [
                        ["compile", self.compile_spans, f"{self.compile_seconds:.4f}"],
                        ["execute", self.execute_spans, f"{self.execute_seconds:.4f}"],
                    ],
                    title="serve phases",
                )
            )
        lines.append("")
        lines.append(
            f"optimizer locations in trace: {self.optimized_locations:g} "
            f"({self.optimizer_calls:g} scalar calls, "
            f"{self.batched_locations:g} batched across "
            f"{self._c('optimizer.batch_calls'):g} slab runs)"
        )
        return "\n".join(lines)


def summarize_serving(records: Iterable[Dict[str, Any]]) -> ServingSummary:
    """Condense a record stream into the serving-layer account.

    Counters arrive either as flushed ``counter`` records (JSONL traces)
    or can be injected directly by building :class:`ServingSummary` from
    a live tracer snapshot.
    """
    summary = ServingSummary()
    for record in records:
        kind = record.get("type")
        if kind == "counter":
            name = record["name"]
            if name.startswith(("serve.", "optimizer.", "batchopt.", "par.")):
                summary.counters[name] = record["value"]
        elif kind == "span_end":
            name = record.get("name")
            if name == "serve.compile":
                summary.compile_spans += 1
                summary.compile_seconds += float(record.get("dur", 0.0))
            elif name == "serve.execute":
                summary.execute_spans += 1
                summary.execute_seconds += float(record.get("dur", 0.0))
            elif name == "serve.template.rebind":
                summary.rebind_spans += 1
                summary.rebind_seconds += float(record.get("dur", 0.0))
    return summary


def read_trace(path: str) -> List[Dict[str, Any]]:
    """Load a JSONL trace file written by a :class:`JsonlSink`."""
    records = []
    with open(path) as handle:
        for line in handle:
            line = line.strip()
            if line:
                records.append(json.loads(line))
    return records


def summarize_trace(records: Iterable[Dict[str, Any]]) -> TraceSummary:
    """Condense a record stream into a :class:`TraceSummary`.

    The per-contour account is rebuilt purely from ``runtime.execution``
    events, so it reproduces the run's
    :class:`~repro.core.runtime.BouquetRunResult` figures exactly.
    """
    accounts: Dict[int, ContourAccount] = {}
    total_cost = 0.0
    execution_count = 0
    completed = False
    final_plan_id: Optional[int] = None
    counters: Dict[str, float] = {}
    timings: Dict[str, Dict[str, float]] = {}
    spans: List[Dict[str, Any]] = []
    for record in records:
        kind = record.get("type")
        if kind == "event" and record.get("name") == "runtime.execution":
            attrs = record["attrs"]
            contour = int(attrs["contour"])
            acct = accounts.get(contour)
            if acct is None:
                acct = accounts[contour] = ContourAccount(contour=contour)
            acct.budget = float(attrs["budget"])
            acct.executions += 1
            execution_count += 1
            if attrs.get("spilled"):
                acct.spilled += 1
            acct.cost_spent += float(attrs["cost_spent"])
            total_cost += float(attrs["cost_spent"])
            for pid in attrs.get("learned", ()):
                if pid not in acct.learned_pids:
                    acct.learned_pids.append(pid)
            if attrs.get("completed") and not attrs.get("spilled"):
                acct.completed = True
                acct.final_plan_id = int(attrs["plan"])
                completed = True
                final_plan_id = int(attrs["plan"])
        elif kind == "span_end":
            spans.append(record)
        elif kind == "counter":
            counters[record["name"]] = record["value"]
        elif kind == "timing":
            timings[record["name"]] = {
                key: record[key] for key in ("count", "total", "min", "max", "mean")
            }
    return TraceSummary(
        contours=[accounts[c] for c in sorted(accounts)],
        total_cost=total_cost,
        execution_count=execution_count,
        completed=completed,
        final_plan_id=final_plan_id,
        counters=counters,
        timings=timings,
        spans=spans,
    )
