"""Trace summarization: turn a record stream into a per-contour account.

Consumes the records produced by :mod:`repro.obs.tracer` (from a JSONL
file or a :class:`~repro.obs.tracer.MemorySink`) and condenses them into
the paper's Table 3 vocabulary: per isocost contour, how many plans were
executed (spilled vs full), under what budget, what they spent, and what
was learned — plus the compile-side account (optimizer calls, pruning,
reduction) and the metric aggregates.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional

__all__ = ["ContourAccount", "TraceSummary", "read_trace", "summarize_trace"]


@dataclass
class ContourAccount:
    """Execution account for one isocost contour (one Table 3 row)."""

    contour: int
    budget: float = 0.0
    executions: int = 0
    spilled: int = 0
    cost_spent: float = 0.0
    completed: bool = False
    final_plan_id: Optional[int] = None
    learned_pids: List[str] = field(default_factory=list)

    @property
    def full(self) -> int:
        return self.executions - self.spilled


@dataclass
class TraceSummary:
    """Everything ``repro trace`` reports about one trace."""

    contours: List[ContourAccount]
    total_cost: float
    execution_count: int
    completed: bool
    final_plan_id: Optional[int]
    counters: Dict[str, float]
    timings: Dict[str, Dict[str, float]]
    spans: List[Dict[str, Any]]

    def describe(self) -> str:
        from ..bench.reporting import format_table

        lines: List[str] = []
        if self.contours:
            rows = []
            for acct in self.contours:
                rows.append(
                    [
                        f"IC{acct.contour}",
                        acct.budget,
                        acct.executions,
                        acct.spilled,
                        acct.full,
                        acct.cost_spent,
                        ",".join(acct.learned_pids) or "-",
                        (
                            f"completed (P{acct.final_plan_id})"
                            if acct.completed
                            else "crossed"
                        ),
                    ]
                )
            lines.append(
                format_table(
                    [
                        "contour",
                        "budget",
                        "execs",
                        "spilled",
                        "full",
                        "cost spent",
                        "learned",
                        "outcome",
                    ],
                    rows,
                    title="per-contour execution account",
                )
            )
            status = (
                f"completed with P{self.final_plan_id}"
                if self.completed
                else "did not complete"
            )
            lines.append(
                f"total: {self.execution_count} executions, "
                f"cost {self.total_cost:.4g} — {status}"
            )
        else:
            lines.append("no bouquet executions in trace")
        top = [s for s in self.spans if s.get("parent", 0) == 0]
        if top:
            rows = [
                [s["name"], f"{s.get('dur', 0.0):.4f}s", _attr_blurb(s.get("attrs", {}))]
                for s in top
            ]
            lines.append("")
            lines.append(format_table(["span", "wall", "attrs"], rows, title="root spans"))
        if self.counters:
            lines.append("")
            lines.append(
                format_table(
                    ["counter", "value"],
                    sorted(self.counters.items()),
                    title="counters",
                )
            )
        if self.timings:
            rows = [
                [name, t["count"], t["total"], t["mean"], t["max"]]
                for name, t in sorted(self.timings.items())
            ]
            lines.append("")
            lines.append(
                format_table(
                    ["timing", "count", "total s", "mean s", "max s"],
                    rows,
                    title="timings",
                )
            )
        return "\n".join(lines)


def _attr_blurb(attrs: Dict[str, Any], limit: int = 4) -> str:
    parts = []
    for key in sorted(attrs):
        value = attrs[key]
        if isinstance(value, float):
            value = f"{value:.4g}"
        parts.append(f"{key}={value}")
        if len(parts) >= limit:
            break
    return " ".join(parts)


def read_trace(path: str) -> List[Dict[str, Any]]:
    """Load a JSONL trace file written by a :class:`JsonlSink`."""
    records = []
    with open(path) as handle:
        for line in handle:
            line = line.strip()
            if line:
                records.append(json.loads(line))
    return records


def summarize_trace(records: Iterable[Dict[str, Any]]) -> TraceSummary:
    """Condense a record stream into a :class:`TraceSummary`.

    The per-contour account is rebuilt purely from ``runtime.execution``
    events, so it reproduces the run's
    :class:`~repro.core.runtime.BouquetRunResult` figures exactly.
    """
    accounts: Dict[int, ContourAccount] = {}
    total_cost = 0.0
    execution_count = 0
    completed = False
    final_plan_id: Optional[int] = None
    counters: Dict[str, float] = {}
    timings: Dict[str, Dict[str, float]] = {}
    spans: List[Dict[str, Any]] = []
    for record in records:
        kind = record.get("type")
        if kind == "event" and record.get("name") == "runtime.execution":
            attrs = record["attrs"]
            contour = int(attrs["contour"])
            acct = accounts.get(contour)
            if acct is None:
                acct = accounts[contour] = ContourAccount(contour=contour)
            acct.budget = float(attrs["budget"])
            acct.executions += 1
            execution_count += 1
            if attrs.get("spilled"):
                acct.spilled += 1
            acct.cost_spent += float(attrs["cost_spent"])
            total_cost += float(attrs["cost_spent"])
            for pid in attrs.get("learned", ()):
                if pid not in acct.learned_pids:
                    acct.learned_pids.append(pid)
            if attrs.get("completed") and not attrs.get("spilled"):
                acct.completed = True
                acct.final_plan_id = int(attrs["plan"])
                completed = True
                final_plan_id = int(attrs["plan"])
        elif kind == "span_end":
            spans.append(record)
        elif kind == "counter":
            counters[record["name"]] = record["value"]
        elif kind == "timing":
            timings[record["name"]] = {
                key: record[key] for key in ("count", "total", "min", "max", "mean")
            }
    return TraceSummary(
        contours=[accounts[c] for c in sorted(accounts)],
        total_cost=total_cost,
        execution_count=execution_count,
        completed=completed,
        final_plan_id=final_plan_id,
        counters=counters,
        timings=timings,
        spans=spans,
    )
