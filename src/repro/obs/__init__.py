"""Observability: tracing, metrics, and trace summarization.

Dependency-free telemetry for the bouquet pipeline — see
:mod:`repro.obs.tracer` for the instrumentation primitives and
:mod:`repro.obs.summary` for the ``repro trace`` summarizer.
"""

from .summary import (
    ContourAccount,
    ServingSummary,
    TraceSummary,
    read_trace,
    summarize_serving,
    summarize_trace,
)
from .tracer import (
    NULL_TRACER,
    JsonlSink,
    MemorySink,
    NullSink,
    NullTracer,
    Sink,
    Span,
    TimingStats,
    Tracer,
)

__all__ = [
    "ContourAccount",
    "ServingSummary",
    "TraceSummary",
    "read_trace",
    "summarize_serving",
    "summarize_trace",
    "NULL_TRACER",
    "JsonlSink",
    "MemorySink",
    "NullSink",
    "NullTracer",
    "Sink",
    "Span",
    "TimingStats",
    "Tracer",
]
