"""Dependency-free tracing + metrics for the bouquet pipeline.

A :class:`Tracer` carries three kinds of telemetry:

* **spans** — nestable, timed scopes (``session.compile``,
  ``execute.bouquet``, ...) opened with :meth:`Tracer.span`;
* **events** — typed point-in-time records (one bouquet execution, one
  pruned hypercube, ...) emitted with :meth:`Tracer.event`;
* **metrics** — named counters (:meth:`Tracer.count`) and timing
  histograms (:meth:`Tracer.observe`) aggregated in memory.

Every span/event is forwarded as a plain dict to a pluggable
:class:`Sink`: :class:`MemorySink` for tests and the bench harness,
:class:`JsonlSink` for offline analysis (``repro trace`` summarizes the
file), and the zero-overhead :data:`NULL_TRACER` default — instrumented
components guard their hot paths with ``if tracer.enabled:`` so an
untraced run pays only a boolean check.

Tracers never cross process boundaries: sinks may hold open file
handles, so pickling a tracer yields :data:`NULL_TRACER` on the other
side (parallel POSP workers therefore run untraced; the parent records
the fan-out instead).
"""

from __future__ import annotations

import json
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

__all__ = [
    "Sink",
    "NullSink",
    "MemorySink",
    "JsonlSink",
    "TimingStats",
    "Span",
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
]


# ---------------------------------------------------------------------------
# Sinks
# ---------------------------------------------------------------------------


class Sink:
    """Receives trace records (plain dicts) as they are produced."""

    def emit(self, record: Dict[str, Any]) -> None:
        raise NotImplementedError

    def close(self) -> None:  # pragma: no cover - default no-op
        pass


class NullSink(Sink):
    """Discards everything (the zero-overhead default)."""

    def emit(self, record: Dict[str, Any]) -> None:
        pass


class MemorySink(Sink):
    """Keeps records in a list — for tests and in-process summaries."""

    def __init__(self):
        self.records: List[Dict[str, Any]] = []

    def emit(self, record: Dict[str, Any]) -> None:
        self.records.append(record)

    def events(self, name: Optional[str] = None) -> List[Dict[str, Any]]:
        return [
            r
            for r in self.records
            if r["type"] == "event" and (name is None or r["name"] == name)
        ]

    def spans(self, name: Optional[str] = None) -> List[Dict[str, Any]]:
        return [
            r
            for r in self.records
            if r["type"] == "span_end" and (name is None or r["name"] == name)
        ]


class JsonlSink(Sink):
    """Appends one JSON object per record to a file, for offline analysis."""

    def __init__(self, path: str):
        self.path = path
        self._handle = open(path, "w")

    def emit(self, record: Dict[str, Any]) -> None:
        self._handle.write(json.dumps(record, default=_jsonable) + "\n")

    def close(self) -> None:
        if not self._handle.closed:
            self._handle.flush()
            self._handle.close()


def _jsonable(value):
    """Fallback encoder: numpy scalars and other oddballs become floats/strs."""
    try:
        return float(value)
    except (TypeError, ValueError):
        return str(value)


# ---------------------------------------------------------------------------
# Metrics
# ---------------------------------------------------------------------------


@dataclass
class TimingStats:
    """A tiny streaming histogram: count / total / min / max."""

    count: int = 0
    total: float = 0.0
    min: float = field(default=float("inf"))
    max: float = 0.0

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def as_dict(self) -> Dict[str, float]:
        return {
            "count": self.count,
            "total": self.total,
            "min": self.min if self.count else 0.0,
            "max": self.max,
            "mean": self.mean,
        }


# ---------------------------------------------------------------------------
# Spans
# ---------------------------------------------------------------------------


class Span:
    """One nestable, timed scope.  Use as a context manager; attributes
    added via :meth:`set` land on the ``span_end`` record."""

    __slots__ = ("_tracer", "name", "span_id", "parent_id", "attrs", "_t0")

    def __init__(self, tracer: "Tracer", name: str, span_id: int, parent_id: int, attrs: Dict):
        self._tracer = tracer
        self.name = name
        self.span_id = span_id
        self.parent_id = parent_id
        self.attrs = attrs
        self._t0 = tracer.clock()

    def set(self, **attrs) -> "Span":
        self.attrs.update(attrs)
        return self

    def end(self) -> None:
        """Close the span without a ``with`` block."""
        self._tracer._end_span(self)

    def __enter__(self) -> "Span":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        if exc_type is not None:
            self.attrs.setdefault("error", exc_type.__name__)
        self._tracer._end_span(self)
        return False


class _NullSpan:
    """Shared no-op span handed out by :class:`NullTracer`."""

    __slots__ = ()

    def set(self, **attrs) -> "_NullSpan":
        return self

    def end(self) -> None:
        pass

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False


_NULL_SPAN = _NullSpan()


# ---------------------------------------------------------------------------
# Tracer
# ---------------------------------------------------------------------------


class Tracer:
    """Spans + events + counters/timings, forwarded to one sink."""

    enabled = True

    def __init__(self, sink: Optional[Sink] = None, clock=time.perf_counter):
        self.sink = sink if sink is not None else MemorySink()
        self.clock = clock
        self.counters: Dict[str, float] = {}
        self.timings: Dict[str, TimingStats] = {}
        self._next_span_id = 1
        self._stack: List[int] = []
        # Counters/timings are bumped from serving worker threads; the
        # read-modify-write must be atomic.  (Spans remain effectively
        # single-threaded: concurrent requests nest under their own
        # call stacks and the serving layer never shares one span.)
        self._metrics_lock = threading.Lock()

    # -- spans ----------------------------------------------------------

    @property
    def current_span_id(self) -> int:
        return self._stack[-1] if self._stack else 0

    def span(self, name: str, **attrs) -> Span:
        span = Span(self, name, self._next_span_id, self.current_span_id, attrs)
        self._next_span_id += 1
        self._stack.append(span.span_id)
        self.sink.emit(
            {
                "type": "span_start",
                "name": name,
                "span": span.span_id,
                "parent": span.parent_id,
                "t": span._t0,
            }
        )
        return span

    def _end_span(self, span: Span) -> None:
        # Spans close LIFO in normal use; tolerate out-of-order exits.
        if span.span_id in self._stack:
            while self._stack and self._stack[-1] != span.span_id:
                self._stack.pop()
            if self._stack:
                self._stack.pop()
        now = self.clock()
        self.sink.emit(
            {
                "type": "span_end",
                "name": span.name,
                "span": span.span_id,
                "parent": span.parent_id,
                "dur": now - span._t0,
                "attrs": dict(span.attrs),
            }
        )

    # -- events ---------------------------------------------------------

    def event(self, name: str, **attrs) -> None:
        self.sink.emit(
            {
                "type": "event",
                "name": name,
                "span": self.current_span_id,
                "attrs": attrs,
            }
        )

    # -- metrics --------------------------------------------------------

    def count(self, name: str, n: float = 1) -> None:
        with self._metrics_lock:
            self.counters[name] = self.counters.get(name, 0) + n

    def observe(self, name: str, value: float) -> None:
        with self._metrics_lock:
            stats = self.timings.get(name)
            if stats is None:
                stats = self.timings[name] = TimingStats()
            stats.observe(value)

    def snapshot(self) -> Dict[str, Dict]:
        """Current metric aggregates (counters + timing stats)."""
        return {
            "counters": dict(self.counters),
            "timings": {name: t.as_dict() for name, t in self.timings.items()},
        }

    def flush_metrics(self) -> None:
        """Emit the metric aggregates to the sink as typed records."""
        for name, value in sorted(self.counters.items()):
            self.sink.emit({"type": "counter", "name": name, "value": value})
        for name, stats in sorted(self.timings.items()):
            self.sink.emit({"type": "timing", "name": name, **stats.as_dict()})

    def close(self) -> None:
        """Flush metrics and close the sink (idempotent for JSONL sinks)."""
        self.flush_metrics()
        self.sink.close()

    # -- pickling -------------------------------------------------------

    def __reduce__(self):
        # Sinks can hold open file handles; a tracer shipped to another
        # process degrades to the null tracer (see module docstring).
        return (_null_tracer, ())


class NullTracer(Tracer):
    """The zero-overhead tracer: every operation is a no-op."""

    enabled = False

    def __init__(self):
        super().__init__(sink=NullSink())

    def span(self, name: str, **attrs) -> _NullSpan:  # type: ignore[override]
        return _NULL_SPAN

    def event(self, name: str, **attrs) -> None:
        pass

    def count(self, name: str, n: float = 1) -> None:
        pass

    def observe(self, name: str, value: float) -> None:
        pass

    def close(self) -> None:
        pass


NULL_TRACER = NullTracer()


def _null_tracer() -> NullTracer:
    return NULL_TRACER
