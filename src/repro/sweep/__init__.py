"""Vectorized + parallel ESS sweep engine for optimized-bouquet metrics.

The per-location reference (:func:`repro.core.simulation.simulate_at` in
``optimized`` mode, looped over the grid) re-runs the Figure 13 driver
from scratch at every location.  This package computes the same field
with three cooperating layers:

* :mod:`repro.sweep.cohorts` — cohort batching: locations sharing an
  execution prefix advance together through vectorized replicas of the
  driver's decisions, splitting only when their traces diverge.
* :mod:`repro.sweep.memo` — trace-prefix memoization: a trie of
  ``(contour, plan, outcome)`` signatures shares climb prefixes within
  and across sweeps, plus a full-grid totals memo.
* :mod:`repro.sweep.shard` — process-pool sharding for the divergent
  residue that batching cannot amortize.

Entry points: :class:`SweepEngine` for repeated sweeps over one bouquet,
:func:`sweep_cost_field` for the dict-shaped
:func:`~repro.core.simulation.optimized_cost_field` contract, and
:func:`optimized_field_array` for a grid-shaped ndarray (what the
robustness metrics in :mod:`repro.robustness.metrics` consume).
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional

import numpy as np

from ..core.bouquet import PlanBouquet
from ..ess.space import Location
from .cohorts import BatchCoster, ContourTables
from .engine import Cohort, SweepEngine
from .memo import SweepCache, TraceTrie, TrieNode, sweep_cache
from .shard import run_residue, simulate_total

__all__ = [
    "BatchCoster",
    "Cohort",
    "ContourTables",
    "SweepCache",
    "SweepEngine",
    "TraceTrie",
    "TrieNode",
    "optimized_field_array",
    "run_residue",
    "simulate_total",
    "sweep_cache",
    "sweep_cost_field",
]


def sweep_cost_field(
    bouquet: PlanBouquet,
    locations: Optional[Iterable[Location]] = None,
    crossing: Optional[object] = None,
    workers: Optional[int] = None,
    **engine_kwargs,
) -> Dict[Location, float]:
    """Optimized-bouquet cost field via the sweep engine (dict-shaped).

    Drop-in accelerated equivalent of the per-location loop in
    :func:`repro.core.simulation.optimized_cost_field`.
    """
    engine = SweepEngine(
        bouquet, crossing=crossing, workers=workers, **engine_kwargs
    )
    return engine.field_dict(locations)


def optimized_field_array(
    bouquet: PlanBouquet,
    crossing: Optional[object] = None,
    workers: Optional[int] = None,
    **engine_kwargs,
) -> np.ndarray:
    """Full-grid optimized cost field, shaped like ``space.shape``."""
    engine = SweepEngine(
        bouquet, crossing=crossing, workers=workers, **engine_kwargs
    )
    return engine.cost_field()
