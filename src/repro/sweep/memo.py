"""Trace-prefix memoization for the sweep engine.

Three reuse layers, all keyed on the (immutable) bouquet and stashed on
the bouquet object itself (``bouquet._sweep_cache``), so every consumer
of the same bouquet — robustness metric entry points, the bench harness,
serving warm-ups, the verification sample of ``make bench-sweep`` —
shares one cache:

* **Result memo** — a full-grid totals array (NaN = not yet swept).
  Locations whose trace has already been simulated are answered with a
  gather; only the uncovered remainder is swept.  This is what makes
  "sweep the grid, then verify a sample" cost one sweep, not two.
* **Table memo** — the per-contour :class:`~repro.sweep.cohorts.ContourTables`
  and the :class:`~repro.sweep.cohorts.BatchCoster` plan metadata
  (first error nodes, error depths), built once per bouquet.
* **Trace trie** — the decision tree of cohort signatures, keyed by
  ``(contour, plan_id, outcome)`` steps.  Within a sweep it *is* the
  cohort partition (siblings with equal signatures are one cohort, so a
  shared climb prefix is simulated exactly once); across sweeps a cohort
  following an already-materialized path is a memo hit, and the node's
  accumulated fixed budget charge is reused for accounting.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

import numpy as np

from ..core.bouquet import PlanBouquet
from .cohorts import BatchCoster, ContourTables

__all__ = ["TrieNode", "TraceTrie", "SweepCache", "sweep_cache"]


class TrieNode:
    """One discrete execution-prefix node.

    ``charge`` is the fixed (location-independent) cost accumulated along
    the step into this node: failed executions always spend exactly the
    contour budget, so a cohort's shared budget charges live here as one
    scalar per prefix instead of per-location adds.
    """

    __slots__ = ("signature", "children", "visits", "locations", "charge")

    def __init__(self, signature: Tuple = ()):
        self.signature = signature
        self.children: Dict[Tuple, "TrieNode"] = {}
        self.visits = 0
        self.locations = 0
        self.charge = 0.0

    def path_charge(self) -> float:
        return self.charge


class TraceTrie:
    """The decision trie shared by every sweep over one bouquet."""

    def __init__(self):
        self.root = TrieNode()
        self.nodes = 1
        self.hits = 0
        self.misses = 0

    def child(self, node: TrieNode, signature: Tuple, charge: float = 0.0) -> TrieNode:
        """Descend to (creating if needed) the child for one step."""
        nxt = node.children.get(signature)
        if nxt is None:
            nxt = TrieNode(signature)
            nxt.charge = node.charge + charge
            node.children[signature] = nxt
            self.nodes += 1
            self.misses += 1
        else:
            self.hits += 1
        return nxt

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


class SweepCache:
    """Everything the engine memoizes per bouquet."""

    def __init__(self, bouquet: PlanBouquet):
        self.bouquet = bouquet
        self.coster = BatchCoster(bouquet)
        self.trie = TraceTrie()
        self._tables: Dict[int, ContourTables] = {}
        # Flat per-grid-cell totals keyed by crossing-strategy name
        # (different strategies schedule different executions, so their
        # fields differ); NaN marks locations not yet swept.
        self._totals: Dict[str, np.ndarray] = {}
        # Clamped truth per grid cell and dim (assignment_for semantics).
        space = bouquet.space
        clamped = [
            np.minimum(dim.hi, np.maximum(dim.lo, grid))
            for dim, grid in zip(space.dimensions, space.grids)
        ]
        meshes = np.meshgrid(*clamped, indexing="ij")
        self.truth = np.stack([m.ravel() for m in meshes], axis=1)

    def tables(self, position: int) -> ContourTables:
        hit = self._tables.get(position)
        if hit is None:
            hit = self._tables[position] = ContourTables(self.bouquet, position)
        return hit

    def totals(self, crossing: str = "sequential") -> np.ndarray:
        """The flat totals memo for one crossing strategy."""
        hit = self._totals.get(crossing)
        if hit is None:
            hit = self._totals[crossing] = np.full(
                self.bouquet.space.size, np.nan
            )
        return hit

    def known(self, flat: np.ndarray, crossing: str = "sequential") -> np.ndarray:
        """Mask of flat grid indices whose totals are already cached."""
        return ~np.isnan(self.totals(crossing)[flat])

    def store(
        self, flat: np.ndarray, totals: np.ndarray, crossing: str = "sequential"
    ) -> None:
        self.totals(crossing)[flat] = totals

    def invalidate(self) -> None:
        """Drop cached totals (keeps the structural tables + trie)."""
        self._totals.clear()


def sweep_cache(bouquet: PlanBouquet, refresh: bool = False) -> SweepCache:
    """The per-bouquet sweep cache, created on first use.

    ``PlanBouquet`` is a plain (unhashable) dataclass, so the cache rides
    on the instance itself rather than a global WeakKeyDictionary.
    """
    cache: Optional[SweepCache] = getattr(bouquet, "_sweep_cache", None)
    if cache is None:
        cache = SweepCache(bouquet)
        bouquet._sweep_cache = cache
    elif refresh:
        cache.invalidate()
    return cache
