"""Process-pool sharding for the sweep residue.

Cohort batching thrives on homogeneous regions; the residue — cohorts
that split below the batching threshold, or whole sweeps under a
non-sequential crossing strategy (whose scheduling is inherently
per-location) — is driven through the reference per-location runner.
With ``workers > 1`` the residue is chunked across a process pool,
mirroring the spawn-fallback hardening of
:func:`repro.ess.diagram._parallel_optimize`: ``fork`` is preferred so
workers inherit the bouquet for free; otherwise an *explicit* ``spawn``
context is used and the initializer arguments are verified to survive a
pickle round trip before any worker starts, so an unpicklable bouquet
fails fast in the parent instead of crashing inside the pool machinery.
Chunk results stream back through ``imap`` so a worker failure surfaces
at the first affected chunk.

Workers never trace (a forked sink would interleave into the parent's
file; a spawned tracer already degraded to the null tracer while
pickling) — the parent records the fan-out instead.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Sequence, Tuple

from ..core.bouquet import PlanBouquet
from ..ess.space import Location
from ..exceptions import BouquetError
from ..obs.tracer import NULL_TRACER, Tracer

__all__ = ["run_residue", "simulate_total"]

_WORKER_STATE: dict = {}


def simulate_total(
    bouquet: PlanBouquet, location: Location, crossing: Optional[str] = None
) -> float:
    """Reference per-location total: one full optimized-bouquet run."""
    from ..core.runtime import AbstractExecutionService, BouquetRunner

    qa_values = bouquet.space.selectivities_at(location)
    service = AbstractExecutionService(bouquet, qa_values)
    runner = BouquetRunner(bouquet, service, mode="optimized", crossing=crossing)
    result = runner.run()
    if not result.completed:
        raise BouquetError(
            f"bouquet failed to complete at {location} — contour coverage bug"
        )
    return result.total_cost


def _init_sweep_worker(bouquet: PlanBouquet, crossing: Optional[str]):
    # See module docstring: residue workers run untraced.
    bouquet.cost_cache.optimizer.tracer = NULL_TRACER
    _WORKER_STATE["bouquet"] = bouquet
    _WORKER_STATE["crossing"] = crossing


def _residue_chunk(locations: List[Location]) -> List[Tuple[Location, float]]:
    bouquet = _WORKER_STATE["bouquet"]
    crossing = _WORKER_STATE["crossing"]
    return [
        (location, simulate_total(bouquet, location, crossing))
        for location in locations
    ]


def run_residue(
    bouquet: PlanBouquet,
    locations: Sequence[Location],
    crossing: Optional[str] = None,
    workers: Optional[int] = None,
    tracer: Tracer = NULL_TRACER,
) -> Dict[Location, float]:
    """Per-location totals for the residue, optionally pool-sharded."""
    locations = list(locations)
    if not locations:
        return {}
    if not workers or workers <= 1 or len(locations) == 1:
        return {
            location: simulate_total(bouquet, location, crossing)
            for location in locations
        }

    import multiprocessing as mp
    import pickle

    # The per-bouquet sweep cache is a parent-side acceleration structure;
    # workers rebuild nothing from it, so ship a lean copy instead.
    payload = dataclasses.replace(bouquet)
    chunk_size = max(1, len(locations) // (workers * 4))
    chunks = [
        locations[i : i + chunk_size]
        for i in range(0, len(locations), chunk_size)
    ]
    if "fork" in mp.get_all_start_methods():
        ctx = mp.get_context("fork")
    else:
        ctx = mp.get_context("spawn")
        try:
            restored = pickle.loads(pickle.dumps((payload, crossing)))
        except Exception as exc:
            raise BouquetError(
                "sweep residue sharding needs a picklable PlanBouquet "
                f"under the spawn start method: {exc}"
            ) from exc
        if len(restored) != 2:
            raise BouquetError("initargs pickle round trip lost arguments")
    if tracer.enabled:
        tracer.event(
            "sweep.residue_fanout",
            workers=workers,
            chunks=len(chunks),
            locations=len(locations),
        )
        tracer.observe(
            "sweep.worker_utilization", min(len(chunks), workers) / workers
        )
    totals: Dict[Location, float] = {}
    with ctx.Pool(
        processes=workers,
        initializer=_init_sweep_worker,
        initargs=(payload, crossing),
    ) as pool:
        for chunk_result in pool.imap(_residue_chunk, chunks):
            totals.update(chunk_result)
    return totals
