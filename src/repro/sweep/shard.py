"""Process-pool sharding for the sweep residue.

Cohort batching thrives on homogeneous regions; the residue — cohorts
that split below the batching threshold, or whole sweeps under a
non-sequential crossing strategy (whose scheduling is inherently
per-location) — is driven through the reference per-location runner.
With ``workers > 1`` the residue is chunked across the persistent
:mod:`repro.par` pool (fork-preferred, verified-spawn fallback, payload
pickle hardening — all centralized there).

The shipped bouquet is a *shadow*: its plan-diagram matrices and every
materialized ``PlanCostCache`` plane are exported into shared memory
(:func:`repro.par.export_array`), so the pickled payload carries
segment names instead of grid bytes and workers map the planes
zero-copy.  The shadow also drops the parent-side sweep cache (a pure
acceleration structure workers rebuild nothing from).  Chunk results
are reassembled in submission order, so totals are identical at any
worker count.

Workers never trace (the payload's tracer degraded to the null tracer
while pickling) — the parent records the fan-out instead.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Sequence, Tuple

from ..core.bouquet import PlanBouquet
from ..ess.space import Location
from ..exceptions import BouquetError
from ..obs.tracer import NULL_TRACER, Tracer

__all__ = ["run_residue", "simulate_total"]


def simulate_total(
    bouquet: PlanBouquet, location: Location, crossing: Optional[str] = None
) -> float:
    """Reference per-location total: one full optimized-bouquet run."""
    from ..core.runtime import AbstractExecutionService, BouquetRunner

    qa_values = bouquet.space.selectivities_at(location)
    service = AbstractExecutionService(bouquet, qa_values)
    runner = BouquetRunner(bouquet, service, mode="optimized", crossing=crossing)
    result = runner.run()
    if not result.completed:
        raise BouquetError(
            f"bouquet failed to complete at {location} — contour coverage bug"
        )
    return result.total_cost


def _shm_payload(bouquet: PlanBouquet, tracer: Tracer) -> PlanBouquet:
    """A lean bouquet copy whose grid planes live in shared memory.

    The diagram's plan-id/cost matrices and all materialized cost-cache
    planes become :class:`~repro.par.ShmArray` views that pickle by
    segment name.  Exports are idempotent per source array, so repeated
    residue calls over the same bouquet produce byte-identical payloads
    and hit the per-worker payload cache.
    """
    from ..ess.diagram import PlanCostCache, PlanDiagram
    from ..par import export_array

    cache = bouquet.cost_cache
    diagram = bouquet.diagram
    shm_cache = PlanCostCache(
        cache.space, cache.optimizer, cache.registry, cache.max_plans
    )
    shm_cache.seed(
        {
            plan_id: export_array(array, tracer)
            for plan_id, array in cache.snapshot().items()
        }
    )
    shadow = PlanDiagram(
        diagram.space,
        export_array(diagram.plan_ids, tracer),
        export_array(diagram.costs, tracer),
        diagram.registry,
        shm_cache,
    )
    # replace() also sheds the per-bouquet sweep cache — a parent-side
    # acceleration structure workers never read.
    return dataclasses.replace(bouquet, diagram=shadow)


def _residue_chunk(ctx, payload, locations: List[Location]) -> List[Tuple[Location, float]]:
    bouquet, crossing = payload
    return [
        (location, simulate_total(bouquet, location, crossing))
        for location in locations
    ]


def run_residue(
    bouquet: PlanBouquet,
    locations: Sequence[Location],
    crossing: Optional[str] = None,
    workers: Optional[int] = None,
    tracer: Tracer = NULL_TRACER,
) -> Dict[Location, float]:
    """Per-location totals for the residue, optionally pool-sharded."""
    locations = list(locations)
    if not locations:
        return {}
    if not workers or workers <= 1 or len(locations) == 1:
        return {
            location: simulate_total(bouquet, location, crossing)
            for location in locations
        }

    from ..par import ParError, get_pool

    payload = (_shm_payload(bouquet, tracer), crossing)
    chunk_size = max(1, len(locations) // (workers * 4))
    chunks = [
        locations[i : i + chunk_size]
        for i in range(0, len(locations), chunk_size)
    ]
    if tracer.enabled:
        tracer.event(
            "sweep.residue_fanout",
            workers=workers,
            chunks=len(chunks),
            locations=len(locations),
        )
        tracer.observe(
            "sweep.worker_utilization", min(len(chunks), workers) / workers
        )
    pool = get_pool(workers, tracer=tracer)
    try:
        results = pool.run(_residue_chunk, payload, chunks, tracer=tracer)
    except ParError as exc:
        raise BouquetError(f"sweep residue sharding failed: {exc}") from exc
    totals: Dict[Location, float] = {}
    for chunk_result in results:
        totals.update(chunk_result)
    return totals
