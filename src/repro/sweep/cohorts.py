"""Cohort batching primitives for the optimized-bouquet sweep engine.

The optimized driver (:meth:`repro.core.runtime.BouquetRunner._run_optimized`)
advances one query location at a time through a discrete state machine:
climb contours, pick an AxisPlans candidate, spill it, merge the learning
into ``q_run``.  The decisions taken at each step are *discrete* — which
plan, did the spill complete, did the contour get crossed early — so
locations that share the same decision prefix can be advanced together
("cohorts"), with every per-location quantity (``q_run``, accumulated
cost, spill bisection) carried in numpy arrays.

Two building blocks live here:

* :class:`BatchCoster` — vectorized abstract plan costing over a batch of
  continuous ``q_run`` rows.  The plan cost formulas already evaluate
  elementwise over arrays (see :mod:`repro.optimizer.plans`), so a whole
  cohort is costed in one tree walk.  Also hosts the batched spill-mode
  execution (the 40-step budget bisection of
  :meth:`~repro.core.runtime.AbstractExecutionService.run_spilled`, run
  on all cohort members at once).
* :class:`ContourTables` — per-contour grid precomputations: dominance
  tests against the contour frontier, and the AxisPlans ray-walk/owner
  lookup flattened into gather tables so a cohort's candidate plans come
  from one fancy-indexing pass instead of per-location ray walks.

Both mirror the reference arithmetic exactly (same tolerance constants,
same geometric-interpolation formulas) so the engine's field agrees with
the per-location driver to float noise — orders of magnitude below the
1e-9 relative tolerance the bench enforces.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple

import numpy as np

from ..core.bouquet import PlanBouquet
from ..optimizer.plans import (
    PlanNode,
    cost_plan,
    error_node_depth,
    first_error_node,
)

__all__ = ["BatchCoster", "ContourTables", "build_contour_tables"]


class BatchCoster:
    """Vectorized plan costing + spill execution over location batches."""

    def __init__(self, bouquet: PlanBouquet):
        self.bouquet = bouquet
        self.space = bouquet.space
        cache = bouquet.cost_cache
        self.schema = cache.optimizer.schema
        self.model = cache.optimizer.cost_model
        self.registry = bouquet.registry
        self.dims = self.space.dimensions
        self.base = dict(self.space.base_assignment)
        self.pid_of_dim = [dim.pid for dim in self.dims]
        #: Batched cost_plan invocations (telemetry: one per tree walk).
        self.batched_costings = 0
        self._plans: Dict[int, PlanNode] = {}
        # (plan_id, unlearned) -> (first error node | None, target dim idxs)
        self._spill_nodes: Dict[Tuple[int, FrozenSet[str]], Tuple[Optional[PlanNode], Tuple[int, ...]]] = {}
        # plan_id -> per-dimension error_node_depth vector
        self._depths: Dict[int, np.ndarray] = {}

    # -- plan metadata --------------------------------------------------

    def plan(self, plan_id: int) -> PlanNode:
        node = self._plans.get(plan_id)
        if node is None:
            node = self._plans[plan_id] = self.registry.plan(plan_id)
        return node

    def depths(self, plan_id: int) -> np.ndarray:
        """``error_node_depth(plan, {pid_d})`` for every ESS dimension."""
        vec = self._depths.get(plan_id)
        if vec is None:
            plan = self.plan(plan_id)
            vec = np.array(
                [
                    error_node_depth(plan, frozenset((dim.pid,)))
                    for dim in self.dims
                ],
                dtype=np.int64,
            )
            self._depths[plan_id] = vec
        return vec

    def spill_node(
        self, plan_id: int, unlearned: FrozenSet[str]
    ) -> Tuple[Optional[PlanNode], Tuple[int, ...]]:
        """First error node + sorted target dim indices for one spill."""
        key = (plan_id, unlearned)
        hit = self._spill_nodes.get(key)
        if hit is None:
            plan = self.plan(plan_id)
            node = first_error_node(plan, unlearned)
            if node is None:
                hit = (None, ())
            else:
                target_pids = sorted(node.local_pids & unlearned)
                hit = (node, tuple(self.pid_of_dim.index(p) for p in target_pids))
            self._spill_nodes[key] = hit
        return hit

    # -- batched costing ------------------------------------------------

    def assignment(self, values: np.ndarray) -> Dict[str, object]:
        """Clamped array assignment for a batch of continuous rows.

        Mirrors :meth:`SelectivitySpace.assignment_for`: every error dim
        is clamped into ``[lo, hi]``; non-error pids keep their base
        scalars."""
        out: Dict[str, object] = dict(self.base)
        for j, dim in enumerate(self.dims):
            out[dim.pid] = np.minimum(dim.hi, np.maximum(dim.lo, values[:, j]))
        return out

    def _cost(self, node: PlanNode, assignment: Dict[str, object], n: int) -> np.ndarray:
        self.batched_costings += 1
        est = cost_plan(node, self.schema, self.model, assignment)
        return np.broadcast_to(np.asarray(est.cost, dtype=float), (n,)).copy()

    def plan_cost(self, plan_id: int, values: np.ndarray) -> np.ndarray:
        """``cost_at_values`` for a whole batch: plan cost at clamped rows."""
        return self._cost(self.plan(plan_id), self.assignment(values), len(values))

    def spill_floor(
        self, plan_id: int, values: np.ndarray, unlearned: FrozenSet[str]
    ) -> np.ndarray:
        """Batched :meth:`BouquetRunner._spill_floor`: cost of the spilled
        subtree (full plan when no error node) at clamped ``q_run`` rows."""
        node, _ = self.spill_node(plan_id, unlearned)
        target = self.plan(plan_id) if node is None else node
        return self._cost(target, self.assignment(values), len(values))

    def optimal_estimate(self, values: np.ndarray) -> np.ndarray:
        """Batched PIC estimate: min over bouquet plan costs at each row."""
        best: Optional[np.ndarray] = None
        for plan_id in self.bouquet.plan_ids:
            cost = self.plan_cost(plan_id, values)
            best = cost if best is None else np.minimum(best, cost)
        assert best is not None
        return best

    # -- batched spill-mode execution -----------------------------------

    def run_spilled(
        self,
        plan_id: int,
        budget: float,
        unlearned: FrozenSet[str],
        truth: np.ndarray,
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, Tuple[int, ...]]:
        """Batched :meth:`AbstractExecutionService.run_spilled`.

        ``truth`` holds the clamped true selectivities of the batch
        (rows x dims).  Returns ``(answered, exact, cost_spent, learned,
        target_dims)``: ``answered`` rows completed the *query* (the
        spill-to-store resume fit the budget, spending the plan's true
        cost); ``exact`` rows resolved the spilled subtree — exact
        learning — but the resumed plan consumed the whole budget; all
        other rows charge the budget and learn the bisected lower bound.
        ``learned`` has one column per target dim.
        """
        n = len(truth)
        node, target_dims = self.spill_node(plan_id, unlearned)
        if node is None:
            # No error-prone node: degenerate to a full run at the truth.
            cost = self.plan_cost(plan_id, truth)
            answered = cost <= budget
            spent = np.where(answered, cost, budget)
            return answered, np.zeros(n, dtype=bool), spent, np.empty((n, 0)), ()

        base = self.assignment(truth)
        lows = np.array([self.dims[j].lo for j in target_dims])

        def subtree_cost(t: np.ndarray, rows: np.ndarray) -> np.ndarray:
            # _geometric_interp(lo, truth, t) = truth if truth <= lo
            # else lo * (truth / lo) ** t — elementwise over the batch.
            assignment = {
                pid: (v[rows] if isinstance(v, np.ndarray) else v)
                for pid, v in base.items()
            }
            for col, j in enumerate(target_dims):
                lo = lows[col]
                tv = np.asarray(base[self.dims[j].pid])[rows]
                assignment[self.dims[j].pid] = np.where(
                    tv <= lo, tv, lo * (tv / lo) ** t
                )
            return self._cost(node, assignment, int(rows.sum()))

        every = np.ones(n, dtype=bool)
        subtree_full = subtree_cost(np.ones(n), every)
        plan_full = self.plan_cost(plan_id, truth)
        # Spill-to-store: the plan fits the budget -> the query is
        # answered; only the subtree fits -> exact learning, full budget.
        answered = plan_full <= budget
        exact = ~answered & (subtree_full <= budget)
        spent = np.where(answered, plan_full, budget)
        learned = np.empty((n, len(target_dims)))
        for col, j in enumerate(target_dims):
            learned[:, col] = np.asarray(base[self.dims[j].pid])
        rows = ~answered & ~exact
        if rows.any():
            m = int(rows.sum())
            at0 = subtree_cost(np.zeros(m), rows)
            stuck = at0 > budget
            lo_t = np.zeros(m)
            hi_t = np.ones(m)
            active = ~stuck
            if active.any():
                for _ in range(40):
                    mid = 0.5 * (lo_t + hi_t)
                    cost = subtree_cost(mid, rows)
                    fits = cost <= budget
                    lo_t = np.where(active & fits, mid, lo_t)
                    hi_t = np.where(active & ~fits, mid, hi_t)
            for col, j in enumerate(target_dims):
                lo = lows[col]
                tv = np.asarray(base[self.dims[j].pid])[rows]
                learned[rows, col] = np.where(
                    tv <= lo, tv, lo * (tv / lo) ** lo_t
                )
        return answered, exact, spent, learned, target_dims

    # -- grid helpers ---------------------------------------------------

    def snap(self, values: np.ndarray) -> np.ndarray:
        """Batched :meth:`SelectivitySpace.snap` (ceil to grid indices)."""
        out = np.empty(values.shape, dtype=np.int64)
        for j, grid in enumerate(self.space.grids):
            idx = np.searchsorted(grid, values[:, j] * (1.0 - 1e-12), side="left")
            out[:, j] = np.minimum(idx, grid.size - 1)
        return out


class ContourTables:
    """Per-contour grid precomputations for one bouquet contour.

    Everything here is a pure function of the (immutable) bouquet, so the
    tables are built once per contour and memoized on the bouquet's sweep
    cache — repeated sweeps (metric entry points, serving warm-ups, bench
    verification samples) never rebuild them.
    """

    def __init__(self, bouquet: PlanBouquet, position: int):
        contour = bouquet.contours[position]
        space = bouquet.space
        shape = space.shape
        ndim = space.dimensionality
        self.position = position
        self.cost = contour.cost
        self.threshold = contour.cost * (1.0 + 1e-9)
        #: Resident plans, ascending (the reference iterates them sorted).
        self.plan_ids: List[int] = list(contour.plan_ids)

        # Contour frontier: selectivities + owning plan, in list order
        # (the covering-location tie break keeps the first of the list).
        locs = contour.locations
        self._loc_coords = np.array(locs, dtype=np.int64).reshape(len(locs), ndim)
        self._loc_sels = np.array(
            [space.selectivities_at(loc) for loc in locs], dtype=float
        ).reshape(len(locs), ndim)
        loc_plans = np.array([contour.plan_at[loc] for loc in locs], dtype=np.int64)
        self._plan_cols = [
            np.flatnonzero(loc_plans == pid) for pid in self.plan_ids
        ]

        costs = bouquet.diagram.costs
        inside = costs <= self.threshold
        self.inside_flat = inside.ravel()

        # Ray-walk table: run_end[d][p] = last grid index g >= p_d such
        # that every cell from p_d to g along axis d stays inside — the
        # reference's +d walk, for every start point at once.
        run_end: List[np.ndarray] = []
        for d in range(ndim):
            axis_idx = np.arange(shape[d]).reshape(
                (1,) * d + (shape[d],) + (1,) * (ndim - d - 1)
            )
            arr = np.where(inside, axis_idx, -1)
            for g in range(shape[d] - 2, -1, -1):
                here = tuple(
                    [slice(None)] * d + [g] + [slice(None)] * (ndim - d - 1)
                )
                nxt = tuple(
                    [slice(None)] * d + [g + 1] + [slice(None)] * (ndim - d - 1)
                )
                cont = inside[here] & inside[nxt]
                arr[here] = np.where(cont, arr[nxt], arr[here])
            run_end.append(arr)

        # Owner table: for every grid point, the closest (L1, first-wins)
        # contour location dominating it, and that location's plan.
        grid_idx = np.indices(shape)
        point_sum = grid_idx.sum(axis=0)
        owner = np.full(shape, -1, dtype=np.int64)
        best = np.full(shape, np.inf)
        loc_sums = self._loc_coords.sum(axis=1)
        for l in range(len(locs)):
            dominates = np.ones(shape, dtype=bool)
            for d in range(ndim):
                dominates &= grid_idx[d] <= self._loc_coords[l, d]
            distance = loc_sums[l] - point_sum
            better = dominates & (distance < best)
            owner[better] = l
            best[better] = distance[better]
        owner_plan = np.where(owner >= 0, loc_plans[np.maximum(owner, 0)], -1)

        # AxisPlans gather: axis_plan[d][p] = candidate plan reached by
        # walking the +d ray from p (or -1 when p is outside the contour
        # or the ray end has no covering contour location).
        self.axis_plan_flat: List[np.ndarray] = []
        for d in range(ndim):
            ray = np.clip(run_end[d], 0, shape[d] - 1)
            gathered = np.take_along_axis(owner_plan, ray, axis=d)
            valid = inside & (run_end[d] >= 0)
            self.axis_plan_flat.append(
                np.where(valid, gathered, -1).ravel()
            )

    def dominating(self, qrun: np.ndarray) -> np.ndarray:
        """Boolean (rows x resident plans): does the plan own a contour
        location dominating this row's ``q_run`` (first-quadrant check)?"""
        scaled = qrun * (1.0 - 1e-9)
        dom_loc = (self._loc_sels[None, :, :] >= scaled[:, None, :]).all(axis=2)
        out = np.empty((len(qrun), len(self.plan_ids)), dtype=bool)
        for j, cols in enumerate(self._plan_cols):
            out[:, j] = dom_loc[:, cols].any(axis=1)
        return out


def build_contour_tables(bouquet: PlanBouquet, position: int) -> ContourTables:
    return ContourTables(bouquet, position)
