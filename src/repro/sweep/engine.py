"""The cohort-stepping sweep engine.

:class:`SweepEngine` computes the optimized-bouquet total cost at many
ESS locations at once by advancing *cohorts* — batches of locations that
share the same discrete execution prefix — through an exact vectorized
replica of :meth:`repro.core.runtime.BouquetRunner._run_optimized`:

1. every location starts in one cohort at the first contour with
   ``q_run = (lo, …, lo)``;
2. each step evaluates the driver's decisions for the whole cohort with
   numpy (first-quadrant dominance against precomputed contour tables,
   AxisPlans candidates via gather tables, spill floors and candidate
   picks via batched abstract plan costing, the spill bisection run on
   all members at once);
3. the cohort then *splits* by decision signature — (contour, plan,
   spill outcome, early-crossing verdict) — and each child continues as
   its own cohort;
4. cohorts that shrink below the batching threshold become *residue* and
   are finished by the reference per-location runner (optionally across
   a process pool, see :mod:`repro.sweep.shard`).

Two closed forms avoid per-location loops entirely: once every dimension
is learned exactly, the remaining climb reduces to masked lookups over
the :class:`~repro.ess.diagram.PlanCostCache` cost arrays (the cheapest
runnable plan either completes immediately or every runnable plan fails
and the contour is crossed); and the no-productive-candidate fallback is
a rank computation over batched plan costs.

The arithmetic mirrors the reference exactly — same tolerance constants,
same interpolation formulas — so fields agree to float rounding noise,
far inside the 1e-9 relative tolerance enforced by ``make bench-sweep``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Optional, Tuple

import numpy as np

from ..core.bouquet import PlanBouquet
from ..ess.space import Location
from ..exceptions import BouquetError
from ..obs.tracer import NULL_TRACER, Tracer
from .memo import SweepCache, TrieNode, sweep_cache
from .shard import run_residue

__all__ = ["SweepEngine", "Cohort"]

#: Cohorts smaller than this are finished by the per-location reference
#: runner (batching overhead exceeds the win on tiny batches).
DEFAULT_RESIDUE_MIN = 4

_NEG = -(10**9)


@dataclass
class Cohort:
    """Locations sharing one discrete execution prefix."""

    rows: np.ndarray  # (N,) indices into the engine's location table
    qrun: np.ndarray  # (N, D) running selectivity lower bounds
    total: np.ndarray  # (N,) accumulated execution cost
    cid: int  # current contour position
    exact: FrozenSet[int]  # dims learned exactly
    attempted: FrozenSet[int]  # plans spilled at this contour
    exhausted: FrozenSet[int]  # plans that consumed this contour's budget
    node: TrieNode  # trace-trie position

    @property
    def size(self) -> int:
        return len(self.rows)


class SweepEngine:
    """Vectorized optimized-bouquet cost-field sweeps for one bouquet."""

    def __init__(
        self,
        bouquet: PlanBouquet,
        crossing: Optional[object] = None,
        workers: Optional[int] = None,
        residue_min: int = DEFAULT_RESIDUE_MIN,
        equivalence_threshold: float = 0.2,
        tracer: Optional[Tracer] = None,
    ):
        from ..sched.strategy import resolve_crossing

        self.bouquet = bouquet
        self.space = bouquet.space
        self.crossing = resolve_crossing(crossing)
        self.workers = workers
        self.residue_min = max(1, residue_min)
        self.equivalence_threshold = equivalence_threshold
        if tracer is not None:
            self.tracer = tracer
        else:
            self.tracer = bouquet.cost_cache.optimizer.tracer
        self.cache: SweepCache = sweep_cache(bouquet)
        self.budgets = list(bouquet.budgets)
        self.D = self.space.dimensionality
        self._shape = self.space.shape
        # Per-run state (set by cost_field):
        self._flat: Optional[np.ndarray] = None
        self._out: Optional[np.ndarray] = None

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------

    def cost_field(self, refresh: bool = False) -> np.ndarray:
        """The full-grid optimized cost field (shape = space.shape)."""
        if refresh:
            self.cache.invalidate()
        flat = np.arange(self.space.size, dtype=np.int64)
        totals = self._totals_for_flat(flat)
        return totals.reshape(self._shape)

    def totals(
        self, locations: Iterable[Location], refresh: bool = False
    ) -> np.ndarray:
        """Per-location totals, aligned with the ``locations`` order."""
        if refresh:
            self.cache.invalidate()
        locs = list(locations)
        if not locs:
            return np.empty(0)
        coords = np.array(locs, dtype=np.int64).reshape(len(locs), self.D)
        flat = np.ravel_multi_index(tuple(coords.T), self._shape)
        return self._totals_for_flat(flat)

    def field_dict(
        self, locations: Optional[Iterable[Location]] = None
    ) -> Dict[Location, float]:
        """Dict-shaped field (the :func:`optimized_cost_field` contract)."""
        locs = (
            list(locations) if locations is not None
            else list(self.space.locations())
        )
        values = self.totals(locs)
        return {loc: float(v) for loc, v in zip(locs, values)}

    # ------------------------------------------------------------------
    # Sweep driver
    # ------------------------------------------------------------------

    def _totals_for_flat(self, flat: np.ndarray) -> np.ndarray:
        cache = self.cache
        tracer = self.tracer
        with tracer.span(
            "sweep.field",
            locations=len(flat),
            crossing=self.crossing.name,
            contours=len(self.bouquet.contours),
        ) as span:
            known = cache.known(flat, self.crossing.name)
            hits = int(known.sum())
            if tracer.enabled and hits:
                tracer.count("sweep.memo_hits", hits)
            todo = flat[~known]
            stats: Dict[str, float] = {
                "cohorts": 0, "splits": 0, "residue": 0, "steps": 0
            }
            if len(todo):
                if self.crossing.name == "sequential":
                    self._sweep(todo, stats)
                else:
                    # Non-sequential crossing reschedules contour plans
                    # per location; the whole request is residue.
                    self._finish_residue(todo, stats)
            span.set(
                memo_hits=hits,
                cohorts=int(stats["cohorts"]),
                splits=int(stats["splits"]),
                residue=int(stats["residue"]),
                memo_hit_rate=cache.trie.hit_rate,
                batched_costings=cache.coster.batched_costings,
            )
        return cache.totals(self.crossing.name)[flat].copy()

    def _sweep(self, flat: np.ndarray, stats: Dict[str, float]) -> None:
        cache = self.cache
        tracer = self.tracer
        n = len(flat)
        self._flat = flat
        self._out = np.full(n, np.nan)
        lo = np.array([dim.lo for dim in self.space.dimensions])
        initial = Cohort(
            rows=np.arange(n, dtype=np.int64),
            qrun=np.broadcast_to(lo, (n, self.D)).copy(),
            total=np.zeros(n),
            cid=0,
            exact=frozenset(),
            attempted=frozenset(),
            exhausted=frozenset(),
            node=cache.trie.root,
        )
        queue: List[Cohort] = [initial]
        residue_rows: List[np.ndarray] = []
        while queue:
            cohort = queue.pop()
            if cohort.size < self.residue_min:
                residue_rows.append(cohort.rows)
                continue
            stats["cohorts"] += 1
            if tracer.enabled:
                tracer.count("sweep.cohorts")
                tracer.observe("sweep.cohort_size", cohort.size)
            children = self._step(cohort)
            stats["steps"] += 1
            stats["splits"] += max(0, len(children) - 1)
            if tracer.enabled and len(children) > 1:
                tracer.count("sweep.cohort_splits", len(children) - 1)
            queue.extend(children)
        if residue_rows:
            rows = np.concatenate(residue_rows)
            stats["residue"] += len(rows)
            if tracer.enabled:
                tracer.count("sweep.residue_locations", len(rows))
            self._finish_residue(flat[rows], stats, out_rows=rows)
        if np.isnan(self._out).any():
            raise BouquetError("sweep engine left locations unswept")
        cache.store(flat, self._out, self.crossing.name)
        self._flat = None
        self._out = None

    def _finish_residue(
        self,
        flat: np.ndarray,
        stats: Dict[str, float],
        out_rows: Optional[np.ndarray] = None,
    ) -> None:
        """Reference per-location totals for residue / crossing sweeps."""
        locations = [
            tuple(int(i) for i in np.unravel_index(f, self._shape))
            for f in flat
        ]
        crossing = self.crossing.name if self.crossing.name != "sequential" else None
        totals = run_residue(
            self.bouquet,
            locations,
            crossing=crossing,
            workers=self.workers,
            tracer=self.tracer,
        )
        values = np.array([totals[loc] for loc in locations])
        if out_rows is not None and self._out is not None:
            self._out[out_rows] = values
        else:
            stats["residue"] += len(flat)
            if self.tracer.enabled:
                self.tracer.count("sweep.residue_locations", len(flat))
            self.cache.store(flat, values, self.crossing.name)

    # ------------------------------------------------------------------
    # One cohort step (one contour interaction)
    # ------------------------------------------------------------------

    def _child(
        self,
        cohort: Cohort,
        mask: np.ndarray,
        qrun: np.ndarray,
        total: np.ndarray,
        rows: np.ndarray,
        signature: Tuple,
        *,
        cid: int,
        exact: FrozenSet[int],
        attempted: FrozenSet[int],
        exhausted: FrozenSet[int],
        charge: float = 0.0,
    ) -> Cohort:
        node = self.cache.trie.child(cohort.node, signature, charge)
        node.visits += 1
        node.locations += int(mask.sum())
        return Cohort(
            rows=rows[mask],
            qrun=qrun[mask],
            total=total[mask],
            cid=cid,
            exact=exact,
            attempted=attempted,
            exhausted=exhausted,
            node=node,
        )

    def _step(self, cohort: Cohort) -> List[Cohort]:
        contours = self.bouquet.contours
        if cohort.cid >= len(contours):
            # The reference run would return completed=False here and
            # simulate_at would raise: contour coverage is broken.
            raise BouquetError(
                "sweep reached the end of the contour ladder without "
                "completing — contour coverage bug"
            )
        cid = cohort.cid
        budget = self.budgets[cid]
        tables = self.cache.tables(cid)
        children: List[Cohort] = []

        dom = tables.dominating(cohort.qrun)
        has_dom = dom.any(axis=1)
        if not has_dom.all():
            # First-quadrant pruning: qa cannot lie inside this contour —
            # cross without execution.
            children.append(
                self._child(
                    cohort, ~has_dom, cohort.qrun, cohort.total, cohort.rows,
                    ("skip", cid),
                    cid=cid + 1, exact=cohort.exact,
                    attempted=frozenset(), exhausted=frozenset(),
                )
            )
        if not has_dom.any():
            return children
        rows = cohort.rows[has_dom]
        qrun = cohort.qrun[has_dom]
        total = cohort.total[has_dom]
        dom = dom[has_dom]
        flat = self._flat[rows]

        if len(cohort.exact) == self.D:
            # Endgame: every dimension learned exactly, so AxisPlans has
            # nothing to offer and the driver goes straight to the
            # run-the-dominating-plans fallback.
            self._fallback(
                cohort, children, rows, qrun, total, dom, flat,
                np.zeros((len(rows), 0), dtype=bool), [], tables, budget,
            )
            return children

        self._spill_step(
            cohort, children, rows, qrun, total, dom, flat, tables, budget
        )
        return children

    # -- spill step ------------------------------------------------------

    def _spill_step(
        self, cohort, children, rows, qrun, total, dom, flat, tables, budget
    ) -> None:
        coster = self.cache.coster
        cid = cohort.cid
        n = len(rows)
        D = self.D
        exact = cohort.exact
        unlearned_dims = [d for d in range(D) if d not in exact]
        unlearned = frozenset(
            self.space.dimensions[d].pid for d in unlearned_dims
        )

        # AxisPlans candidates via the precomputed gather tables.
        snapped = coster.snap(qrun)
        snap_flat = np.ravel_multi_index(tuple(snapped.T), self._shape)
        inside0 = tables.inside_flat[snap_flat]
        cand = np.full((n, D), -1, dtype=np.int64)
        for d in unlearned_dims:
            cand[:, d] = np.where(
                inside0, tables.axis_plan_flat[d][snap_flat], -1
            )
        plan_list = sorted(
            set(int(p) for p in np.unique(cand) if p >= 0) - set(cohort.attempted)
        )
        P = len(plan_list)
        if P == 0:
            self._fallback(
                cohort, children, rows, qrun, total, dom, flat,
                np.zeros((n, 0), dtype=bool), [], tables, budget,
            )
            return
        present = np.zeros((n, P), dtype=bool)
        depth = np.full((n, P), _NEG, dtype=np.int64)
        for k, pid in enumerate(plan_list):
            hit = cand == pid
            present[:, k] = hit.any(axis=1)
            depth[:, k] = np.where(hit, coster.depths(pid)[None, :], _NEG).max(axis=1)

        # Spill-floor pre-check: candidates whose spilled subtree already
        # prices at/above the budget at q_run are pruned (and exhausted).
        pruned = np.zeros((n, P), dtype=bool)
        for k, pid in enumerate(plan_list):
            r = present[:, k]
            if r.any():
                floor = coster.spill_floor(pid, qrun[r], unlearned)
                pruned[r, k] = floor >= budget * (1.0 - 1e-9)
        productive = present & ~pruned

        # Candidate pick: cheapest cost-equivalence group, deepest error
        # node first, plan id as the final tie break.
        costq = np.full((n, P), np.inf)
        for k, pid in enumerate(plan_list):
            r = productive[:, k]
            if r.any():
                costq[r, k] = coster.plan_cost(pid, qrun[r])
        cheapest = np.min(np.where(productive, costq, np.inf), axis=1)
        with np.errstate(invalid="ignore"):
            in_group = productive & (
                costq <= (cheapest * (1.0 + self.equivalence_threshold))[:, None]
            )
        best_depth = np.full(n, _NEG, dtype=np.int64)
        best_cost = np.full(n, np.inf)
        winner = np.full(n, -1, dtype=np.int64)
        for k, pid in enumerate(plan_list):
            g = in_group[:, k]
            d_k = depth[:, k]
            c_k = costq[:, k]
            better = g & (
                (d_k > best_depth)
                | ((d_k == best_depth) & (c_k < best_cost))
            )
            best_depth[better] = d_k[better]
            best_cost[better] = c_k[better]
            winner[better] = pid

        # Pruned-set bitmask: pruned plans join attempted/exhausted, so
        # rows with different pruned sets diverge discretely.
        if P:
            bits = (pruned @ (1 << np.arange(P, dtype=np.int64))).astype(np.int64)
        else:
            bits = np.zeros(n, dtype=np.int64)

        fallback = winner < 0
        if fallback.any():
            self._fallback(
                cohort, children, rows[fallback], qrun[fallback],
                total[fallback], dom[fallback], flat[fallback],
                pruned[fallback], plan_list, tables, budget,
            )

        active = ~fallback
        if not active.any():
            return
        may_cross = cid + 1 < len(self.bouquet.contours)
        # Group spill executions by (pruned bitmask, winner) — the spill
        # itself only depends on the winner, but the pruned set feeds the
        # child cohorts' attempted/exhausted state.
        pair = np.stack([bits, winner], axis=1)
        for b_val, w_val in sorted({tuple(p) for p in pair[active].tolist()}):
            sel = active & (bits == b_val) & (winner == w_val)
            self._execute_spill(
                cohort, children, sel, rows, qrun, total, flat,
                int(w_val), int(b_val), plan_list, unlearned, budget, may_cross,
            )

    def _execute_spill(
        self, cohort, children, sel, rows, qrun, total, flat,
        plan_id, bits, plan_list, unlearned, budget, may_cross,
    ) -> None:
        coster = self.cache.coster
        cid = cohort.cid
        truth = self.cache.truth[flat[sel]]
        answered, exact_mask, spent, learned, target_dims = coster.run_spilled(
            plan_id, budget, unlearned, truth
        )
        qrun_new = qrun[sel].copy()
        for col, j in enumerate(target_dims):
            qrun_new[:, j] = np.maximum(qrun_new[:, j], learned[:, col])
        total_new = total[sel] + spent
        rows_sel = rows[sel]

        # Spill-to-store completions: the resumed plan finished under the
        # budget, answering the query — these locations are done (direct
        # writes, like the fallback winners).
        if answered.any():
            self._out[rows_sel[answered]] = total_new[answered]
        remaining = ~answered
        if not remaining.any():
            return

        # Early contour change (Figure 13's last step): the learned
        # location already prices at/above this contour's budget.
        estimate = coster.optimal_estimate(qrun_new)
        crossed = (estimate >= budget) & may_cross

        pruned_plans = frozenset(
            pid for k, pid in enumerate(plan_list) if bits >> k & 1
        )
        for exact_spill in (True, False):
            kind_mask = remaining & (exact_mask == exact_spill)
            if not kind_mask.any():
                continue
            exact2 = cohort.exact
            if exact_spill and target_dims:
                exact2 = cohort.exact | set(target_dims)
            attempted2 = cohort.attempted | pruned_plans | {plan_id}
            # A non-answering spill always consumed the full budget, so
            # the plan is proven unable to complete under it (PCM).
            exhausted2 = cohort.exhausted | pruned_plans | {plan_id}
            for crs in (True, False):
                mask = kind_mask & (crossed == crs)
                if not mask.any():
                    continue
                signature = ("spill", cid, plan_id, bits, exact_spill, crs)
                if crs:
                    children.append(
                        self._child(
                            cohort, mask, qrun_new, total_new, rows_sel,
                            signature,
                            cid=cid + 1, exact=exact2,
                            attempted=frozenset(), exhausted=frozenset(),
                            charge=budget,
                        )
                    )
                else:
                    children.append(
                        self._child(
                            cohort, mask, qrun_new, total_new, rows_sel,
                            signature,
                            cid=cid, exact=exact2,
                            attempted=attempted2, exhausted=exhausted2,
                            charge=budget,
                        )
                    )

    # -- no-productive-candidate fallback -------------------------------

    def _fallback(
        self, cohort, children, rows, qrun, total, dom, flat,
        pruned, plan_list, tables, budget,
    ) -> None:
        """Nothing left to learn on this contour: run the dominating
        resident plans fully (cheapest at q_run first), pruning plans
        already beyond the budget at q_run; cross if none completes."""
        coster = self.cache.coster
        cache = self.bouquet.cost_cache
        cid = cohort.cid
        n = len(rows)
        Pc = len(tables.plan_ids)
        costq = np.full((n, Pc), np.inf)
        eligible = np.zeros((n, Pc), dtype=bool)
        col_of = {pid: k for k, pid in enumerate(plan_list)}
        for j, pid in enumerate(tables.plan_ids):
            r = dom[:, j].copy()
            if pid in cohort.exhausted:
                r[:] = False
            k = col_of.get(pid)
            if k is not None:
                r &= ~pruned[:, k]
            if r.any():
                costq[r, j] = coster.plan_cost(pid, qrun[r])
            eligible[:, j] = r
        runnable = eligible & (costq <= budget * (1.0 + 1e-9))
        true_cost = np.empty((n, Pc))
        for j, pid in enumerate(tables.plan_ids):
            true_cost[:, j] = cache.cost_array(pid).ravel()[flat]
        completes = runnable & (true_cost <= budget)

        # First completer in ascending (cost-at-q_run, plan id) order.
        win_cost = np.full(n, np.inf)
        win_col = np.full(n, -1, dtype=np.int64)
        for j in range(Pc):
            c = np.where(completes[:, j], costq[:, j], np.inf)
            better = c < win_cost
            win_cost[better] = c[better]
            win_col[better] = j
        has_winner = win_col >= 0
        if has_winner.any():
            # Failed attempts before the winner — ascending (cost-at-
            # q_run, plan id) — each burn the budget.
            cols = np.arange(Pc, dtype=np.int64)
            before = runnable & (
                (costq < win_cost[:, None])
                | ((costq == win_cost[:, None]) & (cols[None, :] < win_col[:, None]))
            )
            fails = before.sum(axis=1)
            w = np.where(has_winner, win_col, 0)
            final = true_cost[np.arange(n), w]
            done = has_winner
            self._out[rows[done]] = (
                total[done] + budget * fails[done] + final[done]
            )
        failed = ~has_winner
        if failed.any():
            total_after = total + budget * runnable.sum(axis=1)
            children.append(
                self._child(
                    cohort, failed, qrun, total_after, rows,
                    ("fallback-cross", cid),
                    cid=cid + 1, exact=cohort.exact,
                    attempted=frozenset(), exhausted=frozenset(),
                )
            )
