"""Statistics deltas: what actually moved between two world views.

A statistics refresh replaces the optimizer's entire world view, but in
steady state most of it is unchanged — ANALYZE touched one table, one
column's histogram shifted, one PK grew.  :func:`statistics_delta`
compares two :class:`~repro.catalog.statistics.DatabaseStatistics`
field-by-field and reports the drift as a :class:`StatisticsDelta`;
:meth:`StatisticsDelta.moved_pids` maps the drifted columns onto the
predicates of a concrete query, which is what the refresh engine
(:mod:`repro.drift.refresh`) needs to decide whether an artifact can be
patched instead of recompiled.

The mapping mirrors the estimator (:mod:`repro.optimizer.selectivity`):

* a *selection* predicate's estimate depends only on its column's
  statistics (histogram, MCVs, bounds), so it moves iff that column
  drifted in any field;
* a *join* predicate's estimate is ``1 / max(ndv_left, ndv_right)``, so
  it moves only when a joined column's **distinct count** changed —
  value-bound or histogram drift on a join column is invisible to it.

:func:`perturb_statistics` is the matching drift injector: a deep copy
of a statistics object with one table (or one column) shifted, used by
the drift bench, the CLI, and the equivalence tests.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import List, Optional, Tuple

from ..catalog.statistics import (
    ColumnStatistics,
    DatabaseStatistics,
    TableStatistics,
)
from ..query.predicates import JoinPredicate, SelectionPredicate
from ..query.query import Query

__all__ = [
    "StatisticsDelta",
    "TableDrift",
    "perturb_statistics",
    "statistics_delta",
]


@dataclass(frozen=True)
class TableDrift:
    """Per-table drift record.

    ``columns`` lists every column whose statistics changed in any field
    (including columns present on only one side); ``ndv_columns`` is the
    subset whose distinct count changed — the only kind of column drift a
    join estimate can observe.
    """

    table: str
    columns: Tuple[str, ...] = ()
    ndv_columns: Tuple[str, ...] = ()
    row_count_changed: bool = False
    added: bool = False
    removed: bool = False

    @property
    def is_empty(self) -> bool:
        return not (
            self.columns
            or self.row_count_changed
            or self.added
            or self.removed
        )


@dataclass(frozen=True)
class StatisticsDelta:
    """Field-level difference between two statistics world views."""

    tables: Tuple[TableDrift, ...] = ()

    @property
    def is_empty(self) -> bool:
        return all(t.is_empty for t in self.tables)

    @property
    def drifted_tables(self) -> List[str]:
        return [t.table for t in self.tables if not t.is_empty]

    def _drift(self, table: str) -> Optional[TableDrift]:
        for entry in self.tables:
            if entry.table == table:
                return entry
        return None

    def moved_pids(self, query: Query) -> List[str]:
        """Predicates of ``query`` whose selectivity estimate can have
        moved under this delta (see the module docstring for the
        estimator mapping)."""
        moved: List[str] = []
        for pid in query.predicate_ids:
            pred = query.predicate(pid)
            if isinstance(pred, SelectionPredicate):
                drift = self._drift(pred.table)
                if drift is not None and (
                    pred.column in drift.columns or drift.added or drift.removed
                ):
                    moved.append(pid)
            elif isinstance(pred, JoinPredicate):
                for table, column in (
                    (pred.left_table, pred.left_column),
                    (pred.right_table, pred.right_column),
                ):
                    drift = self._drift(table)
                    if drift is not None and (
                        column in drift.ndv_columns or drift.added or drift.removed
                    ):
                        moved.append(pid)
                        break
        return moved

    def describe(self) -> str:
        if self.is_empty:
            return "statistics delta: empty (world views identical)"
        lines = ["statistics delta:"]
        for entry in self.tables:
            if entry.is_empty:
                continue
            flags = []
            if entry.added:
                flags.append("added")
            if entry.removed:
                flags.append("removed")
            if entry.row_count_changed:
                flags.append("rows")
            detail = ",".join(flags + list(entry.columns))
            lines.append(f"  {entry.table}: {detail}")
        return "\n".join(lines)


def _column_drift(
    old: Optional[TableStatistics], new: Optional[TableStatistics]
) -> Tuple[Tuple[str, ...], Tuple[str, ...]]:
    """Changed columns and the ndv-changed subset between two tables."""
    old_cols = set(old.column_names) if old is not None else set()
    new_cols = set(new.column_names) if new is not None else set()
    changed: List[str] = []
    ndv_changed: List[str] = []
    for name in sorted(old_cols | new_cols):
        a = old.column(name) if old is not None else None
        b = new.column(name) if new is not None else None
        if a == b:
            continue
        changed.append(name)
        if a is None or b is None or a.n_distinct != b.n_distinct:
            ndv_changed.append(name)
    return tuple(changed), tuple(ndv_changed)


def statistics_delta(
    old: Optional[DatabaseStatistics], new: Optional[DatabaseStatistics]
) -> StatisticsDelta:
    """Field-by-field comparison of two statistics objects.

    ``None`` on either side (the no-statistics/ETL world view) is treated
    as an empty statistics object: every table on the other side reports
    as added/removed.
    """
    old_names = set(old.table_names) if old is not None else set()
    new_names = set(new.table_names) if new is not None else set()
    entries: List[TableDrift] = []
    for name in sorted(old_names | new_names):
        old_table = old.table(name) if old is not None else None
        new_table = new.table(name) if new is not None else None
        columns, ndv_columns = _column_drift(old_table, new_table)
        entries.append(
            TableDrift(
                table=name,
                columns=columns,
                ndv_columns=ndv_columns,
                row_count_changed=(
                    (old_table.row_count if old_table is not None else None)
                    != (new_table.row_count if new_table is not None else None)
                ),
                added=old_table is None and new_table is not None,
                removed=old_table is not None and new_table is None,
            )
        )
    return StatisticsDelta(tables=tuple(entries))


def _scaled_column(
    stats: ColumnStatistics, scale: float, distinct_scale: Optional[float]
) -> ColumnStatistics:
    n_distinct = stats.n_distinct
    if distinct_scale is not None:
        n_distinct = max(1, int(round(stats.n_distinct * distinct_scale)))
    return ColumnStatistics(
        min_value=stats.min_value * scale,
        max_value=stats.max_value * scale,
        n_distinct=n_distinct,
        null_fraction=stats.null_fraction,
        histogram_bounds=(
            None
            if stats.histogram_bounds is None
            else [b * scale for b in stats.histogram_bounds]
        ),
        mcv_values=[v * scale for v in stats.mcv_values],
        mcv_fractions=list(stats.mcv_fractions),
    )


def perturb_statistics(
    statistics: DatabaseStatistics,
    table: str,
    column: Optional[str] = None,
    *,
    scale: float = 1.1,
    distinct_scale: Optional[float] = None,
    row_scale: Optional[float] = None,
) -> DatabaseStatistics:
    """A deep copy of ``statistics`` with localized drift injected.

    Every value statistic (min/max, histogram bounds, MCV values) of the
    targeted ``table.column`` — or of every column of ``table`` when
    ``column`` is None — is multiplied by ``scale``; ``distinct_scale``
    additionally scales the distinct count (the only knob a join
    estimate reacts to) and ``row_scale`` the table's row count.  All
    other tables and columns are copied unchanged, and all mutation goes
    through the statistics setters so the version token (and therefore
    the fingerprint) is bumped.
    """
    perturbed = DatabaseStatistics()
    for name in statistics.table_names:
        source = statistics.table(name)
        rows = source.row_count
        if name == table and row_scale is not None:
            rows = max(1, int(round(rows * row_scale)))
        copy = TableStatistics(name, rows)
        for col_name in source.column_names:
            col = source.column(col_name)
            if name == table and (column is None or col_name == column):
                copy.set_column(col_name, _scaled_column(col, scale, distinct_scale))
            else:
                copy.set_column(col_name, replace(col))
        perturbed.set_table(copy)
    return perturbed
