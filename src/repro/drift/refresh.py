"""Delta-driven bouquet refresh: re-plan only drift-suspect ESS regions.

A compiled bouquet is a pure function of (query, error dimensions, base
assignment, grid, cost model): statistics enter only through the base
assignment and the dimension selection.  So when a statistics refresh
leaves both unchanged the old artifact is *content-identical* to what a
recompile would produce and can be rebound to the new fingerprint with
zero optimizer work; and when only a few base selectivities moved, most
of the plan diagram survives — the plan that won a location under the
old base usually still wins under the new one.

:func:`delta_refresh` exploits that structure:

1. **Re-cost the incumbent frontier.**  Every plan in the old diagram's
   POSP set is re-costed over the whole new space in one vectorized pass
   per plan (:class:`~repro.ess.diagram.PlanCostCache`), giving the
   candidate argmin/cost field under the new base.
2. **Probe for newcomers.**  A coarse subgrid is planned with the
   authoritative DP slab kernel (``optimize_batch``); any plan it finds
   outside the incumbent set joins the candidate stack.
3. **Diff the frontier.**  A location is *suspect* when its candidate
   argmin differs from the old winner or when two candidates tie there.
   Ties are always suspect: the DP breaks them by an enumeration order
   that threads through *subplan* costs, so even an unchanged tied set
   can resolve differently under the new statistics.  An optional
   ``halo`` widens the suspect set by a Chebyshev ball.
4. **Re-plan the suspects, then chase newcomers to a fixpoint.**  The
   suspect set is sent through ``optimize_batch`` as one slab — the DP
   is authoritative wherever it ran.  Any plan the DP discovers that the
   candidate stack had never seen is then re-costed over the *whole*
   space; every kept location it beats or ties is re-planned in turn,
   until a sweep discovers nothing new.  Everywhere else the incumbent
   plan and its vectorized cost stand.
5. **Renumber canonically.**  The patched diagram's plans are re-registered
   into a fresh registry in row-major first-occurrence order — exactly the
   ids a from-scratch batch compile assigns — then contours and budgets are
   rebuilt by the ordinary :func:`~repro.core.bouquet.identify_bouquet`.

The full recompile stays available as the *reference* engine; the drift
bench (:mod:`repro.bench.drift`) and the equivalence tests run both and
require bit-identical plan ids, costs, and contour bands.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from ..core.bouquet import PlanBouquet, identify_bouquet
from ..ess.diagram import PlanCostCache, PlanDiagram, coarse_subgrid
from ..ess.space import SelectivitySpace
from ..exceptions import DriftError
from ..optimizer.optimizer import Optimizer, PlanRegistry
from .delta import statistics_delta

__all__ = [
    "DeltaRefreshResult",
    "PatchOutcome",
    "bouquets_equal",
    "delta_refresh",
    "moved_base_pids",
    "patch_compiled",
]


@dataclass
class DeltaRefreshResult:
    """Outcome of one delta refresh.

    ``strategy`` is ``"identity"`` when nothing the compile can observe
    moved (the artifact was rebound as-is, zero optimizer work) or
    ``"delta"`` when suspect regions were re-planned.
    ``planned_locations`` counts every location that went through the DP
    (probes + suspects) — the quantity a full recompile would spend
    ``total_locations`` on.
    """

    bouquet: PlanBouquet
    strategy: str
    moved_pids: Tuple[str, ...]
    total_locations: int
    planned_locations: int = 0
    suspect_locations: int = 0
    changed_plan_locations: int = 0

    @property
    def planned_fraction(self) -> float:
        return self.planned_locations / max(1, self.total_locations)

    def describe(self) -> str:
        return (
            f"delta refresh [{self.strategy}]: planned "
            f"{self.planned_locations}/{self.total_locations} locations "
            f"({self.planned_fraction:.1%}), {self.suspect_locations} suspect, "
            f"{self.changed_plan_locations} plan changes, moved pids: "
            f"{', '.join(self.moved_pids) or 'none'}"
        )


def _check_compatible(
    old_space: SelectivitySpace, new_space: SelectivitySpace
) -> None:
    old_dims = tuple((d.pid, d.lo, d.hi) for d in old_space.dimensions)
    new_dims = tuple((d.pid, d.lo, d.hi) for d in new_space.dimensions)
    if old_dims != new_dims:
        raise DriftError(
            "delta refresh needs identical error dimensions; "
            f"old {old_dims} != new {new_dims}"
        )
    if old_space.shape != new_space.shape:
        raise DriftError(
            "delta refresh needs an unchanged grid shape; "
            f"old {old_space.shape} != new {new_space.shape}"
        )


def moved_base_pids(
    old_space: SelectivitySpace, new_space: SelectivitySpace
) -> List[str]:
    """Non-error pids whose base selectivity differs between the spaces.

    Error-dimension pids are excluded: the grid overrides them at every
    location, so their base value is invisible to the compile.
    """
    dims = {d.pid for d in new_space.dimensions}
    old_base = old_space.base_assignment
    new_base = new_space.base_assignment
    return [
        pid
        for pid in sorted(set(old_base) | set(new_base))
        if pid not in dims and old_base.get(pid) != new_base.get(pid)
    ]


def _dilate(mask: np.ndarray, steps: int) -> np.ndarray:
    """Chebyshev-ball dilation of a boolean grid mask by ``steps`` cells."""
    for _ in range(max(0, steps)):
        grown = mask.copy()
        for axis in range(mask.ndim):
            lo = [slice(None)] * mask.ndim
            hi = [slice(None)] * mask.ndim
            lo[axis] = slice(0, -1)
            hi[axis] = slice(1, None)
            grown[tuple(lo)] |= mask[tuple(hi)]
            grown[tuple(hi)] |= mask[tuple(lo)]
        mask = grown
    return mask


def delta_refresh(
    old_bouquet: PlanBouquet,
    optimizer: Optimizer,
    new_space: SelectivitySpace,
    *,
    lambda_: Optional[float] = None,
    ratio: Optional[float] = None,
    probes_per_dim: int = 3,
    halo: int = 0,
    max_probe_divergence: Optional[float] = None,
    max_suspect_fraction: Optional[float] = None,
) -> DeltaRefreshResult:
    """Refresh ``old_bouquet`` onto ``new_space``, re-planning only the
    drift-suspect locations (see the module docstring for the pass
    structure).

    ``optimizer`` must be built over the *new* statistics; ``new_space``
    must share the old space's dimensions and shape (raises
    :class:`~repro.exceptions.DriftError` otherwise — callers fall back
    to the seed-and-merge path or a full recompile).

    ``max_probe_divergence`` and ``max_suspect_fraction`` bound how far
    the carried artifact may drift before the delta path gives up: the
    first caps the relative gap between the incumbent POSP's best cost
    and the DP optimum at the probe locations, the second caps the
    fraction of the grid the frontier diff marks suspect.  Exceeding
    either raises :class:`~repro.exceptions.DriftError` — used by the
    template-cache rebind, which prefers a clean full compile over a
    delta pass that would re-plan most of the grid anyway.  ``None``
    (the default) disables the bound.
    """
    old_space = old_bouquet.space
    _check_compatible(old_space, new_space)
    query = new_space.query
    lambda_ = old_bouquet.lambda_ if lambda_ is None else float(lambda_)
    ratio = old_bouquet.ratio if ratio is None else float(ratio)
    moved = moved_base_pids(old_space, new_space)
    tracer = optimizer.tracer

    if not moved:
        # Nothing the compile can observe changed: the old diagram is
        # content-identical to a from-scratch rebuild.  Rebind it to the
        # new space (new base assignment, new optimizer) without a single
        # optimizer call.
        with tracer.span("drift.refresh", strategy="identity"):
            registry = old_bouquet.registry
            cache = PlanCostCache(new_space, optimizer, registry)
            diagram = PlanDiagram(
                new_space,
                old_bouquet.diagram.plan_ids,
                old_bouquet.diagram.costs,
                registry,
                cache,
            )
            if lambda_ == old_bouquet.lambda_ and ratio == old_bouquet.ratio:
                bouquet = PlanBouquet(
                    space=new_space,
                    diagram=diagram,
                    registry=registry,
                    contours=list(old_bouquet.contours),
                    budgets=list(old_bouquet.budgets),
                    plan_ids=list(old_bouquet.plan_ids),
                    lambda_=lambda_,
                    ratio=ratio,
                )
            else:
                bouquet = identify_bouquet(diagram, lambda_=lambda_, ratio=ratio)
        return DeltaRefreshResult(
            bouquet=bouquet,
            strategy="identity",
            moved_pids=(),
            total_locations=new_space.size,
        )

    with tracer.span(
        "drift.refresh", strategy="delta", moved=len(moved)
    ) as span:
        # Pass 1: carry the incumbent POSP over and re-cost it under the
        # new base in one vectorized sweep per plan.
        registry = optimizer.registry(query)
        old_ids = old_bouquet.diagram.posp_plan_ids
        wid_of = {}
        candidates: List[int] = []
        known = set()
        for plan_id in old_ids:
            wid, _ = registry.register(old_bouquet.registry.plan(plan_id))
            wid_of[plan_id] = wid
            if wid not in known:
                known.add(wid)
                candidates.append(wid)
        n_incumbent = len(candidates)
        lut = np.zeros(max(old_ids) + 1, dtype=np.int64)
        for plan_id, wid in wid_of.items():
            lut[plan_id] = wid
        old_wid = lut[old_bouquet.diagram.plan_ids]

        # Pass 2: authoritative probes on a coarse subgrid to catch plans
        # outside the incumbent set.
        probe_locs = coarse_subgrid(new_space, per_dim=probes_per_dim)
        probe_results = optimizer.optimize_batch(
            query, [new_space.assignment_at(loc) for loc in probe_locs]
        )
        probe_plan = {}
        for loc, result in zip(probe_locs, probe_results):
            probe_plan[loc] = (int(result.plan_id), float(result.cost))
            if result.plan_id not in known:
                known.add(result.plan_id)
                candidates.append(result.plan_id)

        cache = PlanCostCache(new_space, optimizer, registry)
        stacked = np.stack([cache.cost_array(wid) for wid in candidates])
        min_cost = np.min(stacked, axis=0)
        winner = np.array(candidates, dtype=np.int64)[np.argmin(stacked, axis=0)]
        ties = (stacked == min_cost).sum(axis=0) > 1

        if max_probe_divergence is not None:
            # How stale is the carried POSP?  At every probe the DP cost
            # is ground truth; compare it against the best the *incumbent*
            # plans (the first n_incumbent candidate rows — probe
            # newcomers were appended after them) can do there.
            incumbent_min = np.min(stacked[:n_incumbent], axis=0)
            worst = 0.0
            for loc, (_wid, dp_cost) in probe_plan.items():
                gap = (float(incumbent_min[loc]) - dp_cost) / max(dp_cost, 1e-300)
                worst = max(worst, gap)
            if worst > max_probe_divergence:
                raise DriftError(
                    f"carried plans diverge {worst:.1%} from the DP optimum "
                    f"at the probes (tolerance {max_probe_divergence:.1%})"
                )

        # Pass 3: frontier diff (ties always suspect), optional halo.
        suspect = _dilate((winner != old_wid) | ties, steps=halo)
        if max_suspect_fraction is not None:
            fraction = float(suspect.sum()) / float(suspect.size)
            if fraction > max_suspect_fraction:
                raise DriftError(
                    f"{fraction:.1%} of the grid is drift-suspect "
                    f"(tolerance {max_suspect_fraction:.1%}); a full "
                    "compile is cheaper than the delta pass"
                )

        # Pass 4: DP slabs over the suspects (probes already planned),
        # then chase DP-discovered newcomers to a fixpoint: a plan the
        # candidate stack never saw may beat or tie a kept location, so
        # its vectorized cost sweep decides where else the DP must run.
        plan_wid = old_wid.copy()
        costs = min_cost.copy()
        for loc, (wid, cost) in probe_plan.items():
            plan_wid[loc] = wid
            costs[loc] = cost
        dp_done = set(probe_plan)
        replan_locs = [
            loc
            for loc in new_space.locations()
            if suspect[loc] and loc not in dp_done
        ]
        planned = len(probe_plan)
        while replan_locs:
            planned += len(replan_locs)
            replan_results = optimizer.optimize_batch(
                query, [new_space.assignment_at(loc) for loc in replan_locs]
            )
            dp_done.update(replan_locs)
            newcomers = []
            for loc, result in zip(replan_locs, replan_results):
                plan_wid[loc] = result.plan_id
                costs[loc] = float(result.cost)
                if result.plan_id not in known:
                    known.add(result.plan_id)
                    candidates.append(result.plan_id)
                    newcomers.append(result.plan_id)
            if not newcomers:
                break
            threat = np.zeros(new_space.shape, dtype=bool)
            for wid in newcomers:
                threat |= cache.cost_array(wid) <= costs
            replan_locs = [
                loc
                for loc in new_space.locations()
                if threat[loc] and loc not in dp_done
            ]
        changed = int(np.count_nonzero(plan_wid != old_wid))

        # Pass 5: canonical renumbering — fresh registry, ids assigned in
        # row-major first-occurrence order, matching a from-scratch batch
        # compile bit for bit.
        final_registry = PlanRegistry()
        final_ids = np.empty(new_space.shape, dtype=np.int64)
        remap = {}
        for loc in new_space.locations():
            wid = int(plan_wid[loc])
            fid = remap.get(wid)
            if fid is None:
                fid, _ = final_registry.register(registry.plan(wid))
                remap[wid] = fid
            final_ids[loc] = fid
        final_cache = PlanCostCache(new_space, optimizer, final_registry)
        diagram = PlanDiagram(new_space, final_ids, costs, final_registry, final_cache)
        bouquet = identify_bouquet(diagram, lambda_=lambda_, ratio=ratio)
        span.set(
            planned=planned,
            suspect=int(suspect.sum()),
            changed=changed,
            total=new_space.size,
        )
    return DeltaRefreshResult(
        bouquet=bouquet,
        strategy="delta",
        moved_pids=tuple(moved),
        total_locations=new_space.size,
        planned_locations=planned,
        suspect_locations=int(suspect.sum()),
        changed_plan_locations=changed,
    )


# ---------------------------------------------------------------------------
# Artifact patching (the serving layer's entry point)
# ---------------------------------------------------------------------------


@dataclass
class PatchOutcome:
    """A patched compile artifact plus the refresh that produced it."""

    compiled: "object"  # repro.api.CompiledBouquet
    result: DeltaRefreshResult


def patch_compiled(
    compiled,
    catalog,
    *,
    old_statistics=None,
    probes_per_dim: int = 3,
    halo: int = 0,
    tracer=None,
) -> PatchOutcome:
    """Patch a cached :class:`~repro.api.CompiledBouquet` onto the
    catalog's *current* statistics.

    Recomputes the inputs a fresh compile would derive from the new
    statistics (error dimensions, base assignment) and raises
    :class:`~repro.exceptions.DriftError` whenever any of them makes the
    artifact un-patchable — different dimensions, a different grid, or a
    moved base on a grid too large for the exhaustive diagram.  Callers
    (``BouquetServer.refresh_statistics``) treat that as "fall back to
    invalidation".
    """
    from ..api import (
        CompiledBouquet,
        EXHAUSTIVE_LIMIT,
        default_error_dimensions,
    )
    from ..optimizer.selectivity import actual_selectivities

    query = compiled.query
    config = compiled.config
    old_space = compiled.space
    optimizer = catalog.optimizer(config, tracer=tracer)
    dims = default_error_dimensions(query, catalog.schema, catalog.statistics)
    old_dims = tuple((d.pid, d.lo, d.hi) for d in old_space.dimensions)
    if tuple((d.pid, d.lo, d.hi) for d in dims) != old_dims:
        raise DriftError(
            "statistics drift changed the error dimensions; "
            "the artifact must be recompiled"
        )
    resolution = config.resolution_for(len(dims))
    if tuple([resolution] * len(dims)) != old_space.shape:
        raise DriftError("artifact grid does not match the config resolution")
    if catalog.database is not None:
        base = actual_selectivities(query, catalog.database)
    else:
        base = optimizer.estimated_assignment(query)
    new_space = SelectivitySpace(query, old_space.dimensions, list(old_space.shape), base)
    if moved_base_pids(old_space, new_space) and new_space.size > EXHAUSTIVE_LIMIT:
        raise DriftError(
            "ESS too large for the exhaustive patch path; recompile instead"
        )
    result = delta_refresh(
        compiled.bouquet,
        optimizer,
        new_space,
        lambda_=config.lambda_,
        ratio=config.ratio,
        probes_per_dim=probes_per_dim,
        halo=halo,
    )
    if old_statistics is not None and tracer is not None and tracer.enabled:
        delta = statistics_delta(old_statistics, catalog.statistics)
        tracer.event(
            "drift.patch",
            query=query.name,
            strategy=result.strategy,
            drifted_tables=",".join(delta.drifted_tables),
            planned=result.planned_locations,
        )
    patched = CompiledBouquet(
        query=query, bouquet=result.bouquet, config=config, sql=compiled.sql
    )
    return PatchOutcome(compiled=patched, result=result)


# ---------------------------------------------------------------------------
# Equivalence checking (delta path vs. the reference full recompile)
# ---------------------------------------------------------------------------


def bouquets_equal(patched: PlanBouquet, reference: PlanBouquet) -> List[str]:
    """Bit-for-bit comparison of two bouquets; returns mismatch strings
    (empty == identical).

    Plan ids are compared directly (both sides are canonically numbered),
    plans structurally (canonical signatures per id), costs bitwise, and
    contours/budgets exactly — the same bar the compile-engine bench
    holds the batch kernel to against the scalar reference.
    """
    problems: List[str] = []
    if patched.space.shape != reference.space.shape:
        return [f"shape {patched.space.shape} != {reference.space.shape}"]
    if not np.array_equal(patched.diagram.plan_ids, reference.diagram.plan_ids):
        diff = int(
            np.count_nonzero(patched.diagram.plan_ids != reference.diagram.plan_ids)
        )
        problems.append(f"plan ids differ at {diff} locations")
    if not np.array_equal(patched.diagram.costs, reference.diagram.costs):
        diff = int(np.count_nonzero(patched.diagram.costs != reference.diagram.costs))
        problems.append(f"costs differ (not bitwise equal) at {diff} locations")
    for plan_id in patched.diagram.posp_plan_ids:
        try:
            ref_plan = reference.registry.plan(plan_id)
        except Exception:
            problems.append(f"plan {plan_id} missing from reference registry")
            continue
        if (
            patched.registry.plan(plan_id).canonical_signature()
            != ref_plan.canonical_signature()
        ):
            problems.append(f"plan {plan_id} structure differs")
    if len(patched.contours) != len(reference.contours):
        problems.append(
            f"contour count {len(patched.contours)} != {len(reference.contours)}"
        )
    else:
        for ours, theirs in zip(patched.contours, reference.contours):
            if ours.cost != theirs.cost:
                problems.append(f"contour {ours.index} cost differs")
            if list(ours.locations) != list(theirs.locations):
                problems.append(f"contour {ours.index} locations differ")
            if ours.plan_at != theirs.plan_at:
                problems.append(f"contour {ours.index} plan assignment differs")
    if list(patched.budgets) != list(reference.budgets):
        problems.append("contour budgets differ")
    if list(patched.plan_ids) != list(reference.plan_ids):
        problems.append("bouquet plan-id sets differ")
    return problems
