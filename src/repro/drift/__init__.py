"""repro.drift — delta-driven bouquet maintenance.

The paper flags incremental maintenance under data change as an open
problem (§8); this package makes steady-state refresh cost proportional
to *drift* instead of to ESS size:

* :mod:`~repro.drift.delta` compares two statistics world views
  field-by-field (:func:`statistics_delta`) and maps the drift onto a
  query's predicates; :func:`perturb_statistics` is the matching
  localized-drift injector used by the bench, the CLI, and the tests;
* :mod:`~repro.drift.refresh` is the engine: :func:`delta_refresh`
  re-plans only the ESS locations whose argmin plan can have changed
  under the delta (frontier diff + probe + halo, DP-authoritative
  re-plan slab), and :func:`patch_compiled` applies it to a cached
  serving artifact.  :func:`bouquets_equal` is the bit-for-bit
  equivalence check against the reference full recompile.
"""

from .delta import (
    StatisticsDelta,
    TableDrift,
    perturb_statistics,
    statistics_delta,
)
from .refresh import (
    DeltaRefreshResult,
    PatchOutcome,
    bouquets_equal,
    delta_refresh,
    moved_base_pids,
    patch_compiled,
)

__all__ = [
    "DeltaRefreshResult",
    "PatchOutcome",
    "StatisticsDelta",
    "TableDrift",
    "bouquets_equal",
    "delta_refresh",
    "moved_base_pids",
    "patch_compiled",
    "perturb_statistics",
    "statistics_delta",
]
