"""Time-sliced crossing — deterministic round-robin over cost quanta.

The contour budget is divided into ``quanta`` equal simulated-cost
slices.  In each round every surviving plan (ascending id) advances to
the round's cumulative allowance; the first plan to complete during its
slice wins and the round stops — the remaining plans are never touched
again on this contour.

The ledger is charged the **marginal** progress of each slice
(``spent_now - spent_before``), modelling a resumable single-core
scheduler; against the real engine each slice re-runs the plan from
scratch (documented restart overhead), but the account — and therefore
every number a test or bench reads — is a pure function of plan costs
and the quantum count.  Elapsed equals work: this is single-core
semantics, kept bit-reproducible for tests while still bounding how long
one expensive plan can starve the others.
"""

from __future__ import annotations

from typing import Dict

from ..core.runtime import ExecutionRecord
from .strategy import (
    CrossingRequest,
    CrossingResult,
    CrossingStrategy,
    call_full,
    register_crossing,
)


@register_crossing
class TimeSlicedCrossing(CrossingStrategy):
    name = "timesliced"

    def __init__(self, quanta: int = 4):
        if quanta < 1:
            raise ValueError("quanta must be positive")
        self.quanta = int(quanta)

    def cross(self, request: CrossingRequest) -> CrossingResult:
        plans = list(request.plan_ids)
        progress: Dict[int, float] = {pid: 0.0 for pid in plans}
        completed: Dict[int, bool] = {pid: False for pid in plans}
        result = CrossingResult()
        slices = 0
        for step in range(1, self.quanta + 1):
            # The final round lands exactly on the budget, eps-free.
            allowed = (
                request.budget
                if step == self.quanta
                else request.budget * step / self.quanta
            )
            for pid in plans:
                outcome = call_full(request.service, pid, allowed)
                marginal = max(0.0, outcome.cost_spent - progress[pid])
                progress[pid] = max(progress[pid], outcome.cost_spent)
                completed[pid] = outcome.completed
                request.ledger.charge(pid, marginal, completed=outcome.completed)
                slices += 1
                result.learned.extend(outcome.learned)
                if outcome.completed:
                    result.winner_plan_id = pid
                    result.winner_outcome = outcome
                    break
            if result.winner_plan_id is not None:
                break
        for pid in plans:
            if progress[pid] <= 0.0 and not completed[pid]:
                continue  # never reached before the winner finished
            result.records.append(
                ExecutionRecord(
                    contour_index=request.contour_index,
                    plan_id=pid,
                    spilled=False,
                    budget=request.budget,
                    cost_spent=progress[pid],
                    completed=completed[pid],
                )
            )
        request.ledger.set_elapsed(request.ledger.work)
        if request.tracer.enabled:
            request.tracer.count("sched.quanta", slices)
        return result
