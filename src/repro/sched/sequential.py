"""Sequential crossing — the paper's Figure 7 loop, as a strategy.

Plans run one after another under the contour budget; the first
completion wins.  Elapsed cost-time equals total work (one core).  This
is the reference semantics every other strategy is measured against, and
the default the legacy surface keeps.
"""

from __future__ import annotations

from ..core.runtime import ExecutionRecord
from .strategy import (
    CrossingRequest,
    CrossingResult,
    CrossingStrategy,
    call_full,
    register_crossing,
)


@register_crossing
class SequentialCrossing(CrossingStrategy):
    name = "sequential"

    def cross(self, request: CrossingRequest) -> CrossingResult:
        result = CrossingResult()
        ledger = request.ledger
        for plan_id in request.plan_ids:
            outcome = call_full(request.service, plan_id, request.budget)
            ledger.charge(plan_id, outcome.cost_spent, completed=outcome.completed)
            result.records.append(
                ExecutionRecord(
                    contour_index=request.contour_index,
                    plan_id=plan_id,
                    spilled=False,
                    budget=request.budget,
                    cost_spent=outcome.cost_spent,
                    completed=outcome.completed,
                    learned=tuple(outcome.learned),
                )
            )
            result.learned.extend(outcome.learned)
            if outcome.completed:
                result.winner_plan_id = plan_id
                result.winner_outcome = outcome
                break
        ledger.set_elapsed(ledger.work)
        return result
