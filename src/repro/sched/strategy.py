"""The crossing-strategy protocol and registry.

A crossing strategy answers one question: *given the surviving plans of
one isocost contour and its budget, how are their executions scheduled?*
The driver (:class:`repro.core.runtime.BouquetRunner`) owns everything
else — contour climbing, first-quadrant pruning, ``q_run`` merging — so
strategies stay small and composable.
"""

from __future__ import annotations

import inspect
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Sequence, Type, Union

from ..core.runtime import ExecutionOutcome, ExecutionRecord, ExecutionService
from ..exceptions import BouquetError
from ..obs.tracer import NULL_TRACER, Tracer
from .ledger import ContourLedger


@dataclass
class CrossingRequest:
    """Everything a strategy needs to cross one contour.

    ``plan_ids`` are the surviving (first-quadrant dominating) plans in
    deterministic (ascending id) order; ``ledger`` is the contour's
    account on the shared :class:`~repro.sched.ledger.BudgetLedger`.
    """

    contour_index: int
    plan_ids: Sequence[int]
    budget: float
    service: ExecutionService
    ledger: ContourLedger
    tracer: Tracer = NULL_TRACER


@dataclass
class CrossingResult:
    """What one contour crossing produced.

    ``winner_plan_id`` is set iff some plan completed the query within
    the contour budget (in cost-time: the *earliest* completer).  All
    ``learned`` selectivity lower bounds — including those harvested
    from cancelled stragglers — are merged into ``q_run`` by the driver
    before it climbs to the next contour.
    """

    records: List[ExecutionRecord] = field(default_factory=list)
    winner_plan_id: Optional[int] = None
    winner_outcome: Optional[ExecutionOutcome] = None
    learned: List = field(default_factory=list)

    @property
    def completed(self) -> bool:
        return self.winner_plan_id is not None


class CrossingStrategy:
    """Schedules the executions that cross one isocost contour."""

    #: Registry name; also reported in ``sched.cross`` spans.
    name: str = "?"

    def cross(self, request: CrossingRequest) -> CrossingResult:
        raise NotImplementedError


# ---------------------------------------------------------------------------
# Tolerant service invocation
# ---------------------------------------------------------------------------
#
# ExecutionService implementations predating the scheduler (including
# user-supplied fakes in tests) may not accept the ``cancel`` keyword;
# probe the signature once per service type instead of failing.

_CANCEL_SUPPORT: Dict[type, bool] = {}


def _accepts_cancel(service: ExecutionService) -> bool:
    kind = type(service)
    cached = _CANCEL_SUPPORT.get(kind)
    if cached is None:
        try:
            params = inspect.signature(kind.run_full).parameters
            cached = "cancel" in params or any(
                p.kind is inspect.Parameter.VAR_KEYWORD for p in params.values()
            )
        except (TypeError, ValueError):  # builtins / exotic callables
            cached = False
        _CANCEL_SUPPORT[kind] = cached
    return cached


def call_full(
    service: ExecutionService,
    plan_id: int,
    budget: float,
    cancel: Optional[object] = None,
) -> ExecutionOutcome:
    """``service.run_full`` with the cancel token when supported."""
    if cancel is not None and _accepts_cancel(service):
        return service.run_full(plan_id, budget, cancel=cancel)
    return service.run_full(plan_id, budget)


def call_spilled(
    service: ExecutionService,
    plan_id: int,
    budget: float,
    unlearned_pids: FrozenSet[str],
    cancel: Optional[object] = None,
) -> ExecutionOutcome:
    """``service.run_spilled`` with the cancel token when supported."""
    if cancel is not None and _accepts_cancel(service):
        return service.run_spilled(plan_id, budget, unlearned_pids, cancel=cancel)
    return service.run_spilled(plan_id, budget, unlearned_pids)


# ---------------------------------------------------------------------------
# Registry
# ---------------------------------------------------------------------------

_REGISTRY: Dict[str, Type[CrossingStrategy]] = {}


def register_crossing(cls: Type[CrossingStrategy]) -> Type[CrossingStrategy]:
    """Class decorator: make a strategy selectable by its ``name``."""
    if not cls.name or cls.name == "?":
        raise BouquetError("crossing strategy must define a name")
    _REGISTRY[cls.name] = cls
    return cls


def crossing_names() -> List[str]:
    return sorted(_REGISTRY)


def resolve_crossing(
    crossing: Union[str, CrossingStrategy, None],
) -> CrossingStrategy:
    """Turn a config value into a strategy instance.

    Accepts a registry name, an already-built strategy (passed through,
    so callers can tune worker counts / quanta), or ``None`` (the
    sequential default).
    """
    # Imported for the side effect of registering the built-in strategies.
    from . import concurrent, sequential, timesliced  # noqa: F401

    if crossing is None:
        crossing = "sequential"
    if isinstance(crossing, CrossingStrategy):
        return crossing
    cls = _REGISTRY.get(crossing)
    if cls is None:
        raise BouquetError(
            f"unknown crossing strategy {crossing!r} "
            f"(expected one of {crossing_names()})"
        )
    return cls()


#: The stable strategy names (used by config validation and the CLI).
CROSSING_NAMES = ("sequential", "concurrent", "timesliced")
