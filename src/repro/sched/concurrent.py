"""Concurrent crossing — all surviving contour plans at once.

Every surviving plan of the contour is launched on a worker pool, each
under the full contour budget and carrying a
:class:`~repro.sched.cancellation.CancellationToken`.  The moment one
worker completes within budget, every other token is capped at the
winner's completion cost — cooperative cancellation through the
executor's budget checkpoints.

Accounting is done in **cost-time**, deterministically, after all
workers return: with one plan per core all workers progress at the same
rate, so the contour's elapsed is the *cheapest* completion cost (or the
budget when nobody completed) and each straggler is charged
``min(own spent, elapsed)``.  This keeps the ledger identical across
runs even though thread completion order is not, and it is exactly the
model under which multi-D MSO collapses from ``4*(1+lambda)*rho`` to
``4*(1+lambda)``: per contour, elapsed <= one budget instead of rho
budgets.

Learned selectivity lower bounds from *every* worker — winner and
cancelled stragglers alike — are surfaced so the driver can merge them
into ``q_run`` (first-quadrant invariant) before climbing.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor, as_completed
from typing import Dict, Optional

from ..core.runtime import ExecutionOutcome, ExecutionRecord
from .cancellation import CancellationToken
from .strategy import (
    CrossingRequest,
    CrossingResult,
    CrossingStrategy,
    call_full,
    register_crossing,
)

#: Tolerance for cost-time comparisons.
_EPS = 1e-9


@register_crossing
class ConcurrentCrossing(CrossingStrategy):
    name = "concurrent"

    def __init__(self, max_workers: Optional[int] = None):
        """``max_workers`` caps the pool (default: one worker per plan,
        the paper's one-plan-per-core reading)."""
        if max_workers is not None and max_workers < 1:
            raise ValueError("max_workers must be positive")
        self.max_workers = max_workers

    def cross(self, request: CrossingRequest) -> CrossingResult:
        plans = list(request.plan_ids)
        tokens = {pid: CancellationToken() for pid in plans}
        outcomes = self._launch(request, plans, tokens)

        # Deterministic cost-time accounting (independent of thread order).
        completions = sorted(
            (outcomes[pid].cost_spent, pid)
            for pid in plans
            if outcomes[pid].completed
        )
        if completions:
            elapsed, winner = completions[0]
        else:
            elapsed, winner = request.budget, None

        result = CrossingResult()
        tracer = request.tracer
        cancellations = 0
        for pid in plans:
            outcome = outcomes[pid]
            is_winner = pid == winner
            charged = (
                outcome.cost_spent if is_winner else min(outcome.cost_spent, elapsed)
            )
            # A straggler whose run charged more than the contour's
            # cost-time was cut off mid-flight by the winner.
            cancelled = not is_winner and outcome.cost_spent > charged + _EPS
            if cancelled:
                cancellations += 1
            request.ledger.charge(
                pid, charged, completed=is_winner, cancelled=cancelled
            )
            result.records.append(
                ExecutionRecord(
                    contour_index=request.contour_index,
                    plan_id=pid,
                    spilled=False,
                    budget=request.budget,
                    cost_spent=charged,
                    completed=is_winner,
                    learned=tuple(outcome.learned),
                )
            )
            result.learned.extend(outcome.learned)
            if is_winner:
                result.winner_plan_id = pid
                result.winner_outcome = outcome
        request.ledger.set_elapsed(min(elapsed, request.ledger.work))
        if tracer.enabled:
            tracer.count("sched.workers", len(plans))
            if cancellations:
                tracer.count("sched.cancellations", cancellations)
        return result

    # ------------------------------------------------------------------

    def _launch(
        self,
        request: CrossingRequest,
        plans,
        tokens: Dict[int, CancellationToken],
    ) -> Dict[int, ExecutionOutcome]:
        """Run every plan, cancelling stragglers as soon as one completes."""
        if len(plans) == 1:
            pid = plans[0]
            return {pid: call_full(request.service, pid, request.budget, tokens[pid])}
        outcomes: Dict[int, ExecutionOutcome] = {}
        workers = min(len(plans), self.max_workers or len(plans))
        with ThreadPoolExecutor(
            max_workers=workers, thread_name_prefix="sched-cross"
        ) as pool:
            futures = {
                pool.submit(
                    call_full, request.service, pid, request.budget, tokens[pid]
                ): pid
                for pid in plans
            }
            for future in as_completed(futures):
                pid = futures[future]
                outcome = future.result()
                outcomes[pid] = outcome
                if outcome.completed:
                    for other, token in tokens.items():
                        if other != pid:
                            token.cancel_at(outcome.cost_spent)
        return outcomes
