"""repro.sched — pluggable contour-crossing schedulers (§5 + multi-core).

The paper's multi-D guarantee MSO <= 4*(1+lambda)*rho degrades with the
contour density rho because the run-time driver tries a contour's plans
one after another.  Executing them *concurrently* on rho cores collapses
the per-contour cost-time back to one budget, restoring the 1D bound
MSO <= 4*(1+lambda) in elapsed terms.  This package makes the crossing
policy pluggable:

* :class:`SequentialCrossing` — today's behavior (the Figure 7 loop),
  kept as the default and the reference semantics;
* :class:`ConcurrentCrossing` — a worker pool launches every surviving
  plan of the contour under a shared :class:`BudgetLedger`, cancels the
  stragglers the moment one plan completes within budget, and merges
  each worker's partial ``q_run`` observations into the first-quadrant
  invariant before the driver climbs to the next contour;
* :class:`TimeSlicedCrossing` — deterministic round-robin over
  simulated-cost quanta, so single-core semantics (and tests) stay
  bit-reproducible while still bounding per-plan head-of-line blocking.

Strategies account every unit of spent cost in a :class:`BudgetLedger`
(per-plan and per-contour), which distinguishes **work** (total cost
charged across all workers) from **elapsed** (cost-time on the critical
path).  The ledger feeds the MSO math in :mod:`repro.robustness.metrics`
(:func:`~repro.robustness.metrics.crossing_mso_bound`).
"""

from .cancellation import CancellationToken
from .ledger import BudgetLedger, ContourLedger, PlanCharge
from .strategy import (
    CROSSING_NAMES,
    CrossingRequest,
    CrossingResult,
    CrossingStrategy,
    resolve_crossing,
)
from .sequential import SequentialCrossing
from .concurrent import ConcurrentCrossing
from .timesliced import TimeSlicedCrossing

__all__ = [
    "BudgetLedger",
    "CROSSING_NAMES",
    "CancellationToken",
    "ConcurrentCrossing",
    "ContourLedger",
    "CrossingRequest",
    "CrossingResult",
    "CrossingStrategy",
    "PlanCharge",
    "SequentialCrossing",
    "TimeSlicedCrossing",
    "resolve_crossing",
]
