"""Budget accounting for contour-crossing strategies.

The :class:`BudgetLedger` is the shared account every crossing strategy
charges its executions to.  It keeps two currencies separate:

* **work** — total cost charged across all workers (what a single core
  would have to grind through, and what the paper's sequential MSO
  bound ``rho * (1+lambda) * r^2/(r-1)`` is stated over);
* **elapsed** — cost-time on the critical path.  Under concurrent
  crossing the contour's elapsed is the winner's completion cost (or
  the full budget when nobody completed), never ``rho`` budgets — this
  is the quantity the 1D bound ``(1+lambda) * r^2/(r-1)`` applies to.

Every charge is validated: no plan may be charged beyond the contour
budget (the doubling guarantee rests on that), and a contour's work may
never exceed ``plans x budget``.  The ledger's suboptimality accessors
feed :func:`repro.robustness.metrics.crossing_mso_bound`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..exceptions import BouquetError

#: Tolerance for floating-point budget comparisons.
_EPS = 1e-6


@dataclass
class PlanCharge:
    """Cumulative account of one plan's executions on one contour."""

    plan_id: int
    work: float = 0.0
    completed: bool = False
    cancelled: bool = False


@dataclass
class ContourLedger:
    """Per-contour account: budget, per-plan charges, and elapsed cost-time."""

    index: int
    budget: float
    charges: Dict[int, PlanCharge] = field(default_factory=dict)
    elapsed: float = 0.0

    @property
    def work(self) -> float:
        return sum(c.work for c in self.charges.values())

    @property
    def executions(self) -> int:
        return len(self.charges)

    def charge(
        self,
        plan_id: int,
        amount: float,
        completed: bool = False,
        cancelled: bool = False,
    ) -> PlanCharge:
        """Charge ``amount`` cost units to ``plan_id`` on this contour."""
        if amount < 0:
            raise BouquetError("ledger: cannot charge negative cost")
        entry = self.charges.get(plan_id)
        if entry is None:
            entry = PlanCharge(plan_id)
            self.charges[plan_id] = entry
        entry.work += amount
        entry.completed = entry.completed or completed
        entry.cancelled = entry.cancelled or cancelled
        if entry.work > self.budget * (1.0 + _EPS):
            raise BouquetError(
                f"ledger: plan {plan_id} overdrew contour {self.index} "
                f"({entry.work:.4g} > budget {self.budget:.4g})"
            )
        return entry

    def set_elapsed(self, elapsed: float) -> None:
        """Record the contour's critical-path cost-time."""
        if elapsed < -_EPS:
            raise BouquetError("ledger: elapsed cost-time cannot be negative")
        # Float noise in (-_EPS, 0) passes the guard; clamp it to exactly
        # zero so total_elapsed and elapsed_suboptimality never go negative.
        elapsed = max(float(elapsed), 0.0)
        if elapsed > self.work * (1.0 + _EPS):
            raise BouquetError(
                f"ledger: contour {self.index} elapsed {elapsed:.4g} exceeds "
                f"its total work {self.work:.4g}"
            )
        self.elapsed = elapsed


class BudgetLedger:
    """Cross-contour budget account for one bouquet execution.

    Created by the runner with the bouquet's bound parameters so that
    suboptimality ratios and their analytical ceilings are computed in
    one place.
    """

    def __init__(self, ratio: float, lambda_: float, rho: int):
        self.ratio = float(ratio)
        self.lambda_ = float(lambda_)
        self.rho = int(rho)
        self.contours: List[ContourLedger] = []

    def open_contour(self, index: int, budget: float) -> ContourLedger:
        if budget <= 0:
            raise BouquetError("ledger: contour budget must be positive")
        account = ContourLedger(index=index, budget=budget)
        self.contours.append(account)
        return account

    # -- totals ----------------------------------------------------------

    @property
    def total_work(self) -> float:
        return sum(c.work for c in self.contours)

    @property
    def total_elapsed(self) -> float:
        return sum(c.elapsed for c in self.contours)

    @property
    def cancellations(self) -> int:
        return sum(
            1
            for contour in self.contours
            for charge in contour.charges.values()
            if charge.cancelled
        )

    # -- MSO math --------------------------------------------------------

    def work_suboptimality(self, optimal_cost: float) -> float:
        """Total work over the optimal cost (the sequential MSO currency)."""
        if optimal_cost <= 0:
            raise BouquetError("ledger: optimal cost must be positive")
        return self.total_work / optimal_cost

    def elapsed_suboptimality(self, optimal_cost: float) -> float:
        """Critical-path cost-time over the optimal cost (the concurrent
        MSO currency — the one the 4*(1+lambda) bound applies to)."""
        if optimal_cost <= 0:
            raise BouquetError("ledger: optimal cost must be positive")
        return self.total_elapsed / optimal_cost

    def analytical_bound(self, concurrent: bool = False) -> float:
        """The matching a-priori ceiling (see
        :func:`repro.robustness.metrics.crossing_mso_bound`)."""
        from ..robustness.metrics import crossing_mso_bound

        return crossing_mso_bound(
            self.ratio, self.lambda_, self.rho, concurrent=concurrent
        )

    def assert_within_bound(
        self, optimal_cost: float, concurrent: bool = False
    ) -> None:
        """Raise if this execution escaped its analytical guarantee."""
        observed = (
            self.elapsed_suboptimality(optimal_cost)
            if concurrent
            else self.work_suboptimality(optimal_cost)
        )
        bound = self.analytical_bound(concurrent=concurrent)
        if observed > bound * (1.0 + _EPS):
            raise BouquetError(
                f"ledger: suboptimality {observed:.4g} exceeds the analytical "
                f"bound {bound:.4g} (concurrent={concurrent})"
            )

    def describe(self) -> str:
        lines = [
            f"BudgetLedger r={self.ratio:g} lambda={self.lambda_:g} "
            f"rho={self.rho}: work={self.total_work:.4g} "
            f"elapsed={self.total_elapsed:.4g}"
        ]
        for contour in self.contours:
            plans = ", ".join(
                f"P{c.plan_id}:{c.work:.3g}"
                + ("*" if c.completed else "")
                + ("x" if c.cancelled else "")
                for c in contour.charges.values()
            )
            lines.append(
                f"  IC{contour.index}: budget={contour.budget:.4g} "
                f"work={contour.work:.4g} elapsed={contour.elapsed:.4g} "
                f"[{plans}]"
            )
        return "\n".join(lines)


__all__ = ["BudgetLedger", "ContourLedger", "PlanCharge"]
