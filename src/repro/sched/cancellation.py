"""Cooperative cancellation for budget-limited executions.

A :class:`CancellationToken` is handed to each concurrent contour worker
and checked by the execution substrate at its budget checkpoints (the
engine checks on every cost charge; see
:meth:`repro.executor.instrumentation.Instrumentation.charge`).  Tokens
support two triggers:

* :meth:`cancel` — stop as soon as the next checkpoint is reached;
* :meth:`cancel_at` — stop once the run's *own* spent cost crosses a
  cap.  This is the cost-time semantics of concurrent crossing: all
  workers progress at the same rate (one plan per core), so when the
  winner completes at cost ``c`` every straggler is cut off at spent
  ``c`` — even a simulated run that "executed" instantly charges at
  most ``c`` to the ledger.

The token is duck-typed on purpose: the executor layer only calls
``should_stop(spent)``, so it never needs to import this package and
the layering (``sched`` above ``executor``) stays acyclic.
"""

from __future__ import annotations

import threading
from typing import Optional


class CancellationToken:
    """Thread-safe cooperative cancellation flag with an optional cost cap."""

    def __init__(self):
        self._lock = threading.Lock()
        self._cancelled = False
        self._cost_cap: Optional[float] = None

    def cancel(self) -> None:
        """Request an immediate stop at the next checkpoint."""
        with self._lock:
            self._cancelled = True

    def cancel_at(self, cost_cap: float) -> None:
        """Request a stop once the run's own spent cost reaches ``cost_cap``.

        Repeated calls keep the smallest cap (the earliest winner wins).
        """
        with self._lock:
            if self._cost_cap is None or cost_cap < self._cost_cap:
                self._cost_cap = float(cost_cap)

    @property
    def cancelled(self) -> bool:
        with self._lock:
            return self._cancelled

    @property
    def cost_cap(self) -> Optional[float]:
        with self._lock:
            return self._cost_cap

    def should_stop(self, spent: float) -> bool:
        """The executor-side checkpoint: stop this run now?"""
        with self._lock:
            if self._cancelled:
                return True
            return self._cost_cap is not None and spent >= self._cost_cap
