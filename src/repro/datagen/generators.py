"""Seeded synthetic column generators.

Each generator produces a numpy array of a given length from a seeded RNG,
so databases are fully reproducible.  Skewed (Zipf) and correlated
generators exist specifically to create the estimate-vs-actual divergence
that motivates the plan-bouquet technique: equi-depth histograms built from
samples systematically mis-estimate Zipf tails, and attribute-value
independence (AVI) breaks on correlated columns.
"""

from __future__ import annotations

from dataclasses import dataclass
import numpy as np

from ..exceptions import CatalogError


class ColumnGenerator:
    """Base class: subclasses implement :meth:`generate`."""

    def generate(self, n: int, rng: np.random.Generator) -> np.ndarray:
        raise NotImplementedError


@dataclass
class SequentialKey(ColumnGenerator):
    """Dense primary key 1..n."""

    start: int = 1

    def generate(self, n, rng):
        return np.arange(self.start, self.start + n, dtype=np.int64)


@dataclass
class UniformInt(ColumnGenerator):
    """Uniform integers in ``[low, high]`` inclusive."""

    low: int
    high: int

    def generate(self, n, rng):
        if self.high < self.low:
            raise CatalogError("UniformInt requires high >= low")
        return rng.integers(self.low, self.high + 1, size=n, dtype=np.int64)


@dataclass
class UniformFloat(ColumnGenerator):
    """Uniform floats in ``[low, high)``."""

    low: float
    high: float

    def generate(self, n, rng):
        return rng.uniform(self.low, self.high, size=n)


@dataclass
class ZipfInt(ColumnGenerator):
    """Zipf-distributed values over ``n_values`` distinct integers.

    Value ``k`` (1-based rank) occurs with probability proportional to
    ``1 / k**exponent``.  The heavy head/long tail is what histogram
    sampling gets wrong.
    """

    n_values: int
    exponent: float = 1.0
    low: int = 1

    def generate(self, n, rng):
        if self.n_values < 1:
            raise CatalogError("ZipfInt requires n_values >= 1")
        ranks = np.arange(1, self.n_values + 1, dtype=float)
        weights = ranks ** (-self.exponent)
        weights /= weights.sum()
        values = rng.choice(self.n_values, size=n, p=weights)
        return (values + self.low).astype(np.int64)


@dataclass
class ForeignKeyRef(ColumnGenerator):
    """References into a parent key range ``[1, parent_rows]``.

    ``skew`` > 0 makes some parents far more referenced than others
    (Zipf over parents), producing join-selectivity surprises.
    """

    parent_rows: int
    skew: float = 0.0

    def generate(self, n, rng):
        if self.parent_rows < 1:
            raise CatalogError("ForeignKeyRef requires parent_rows >= 1")
        if self.skew <= 0:
            return rng.integers(1, self.parent_rows + 1, size=n, dtype=np.int64)
        ranks = np.arange(1, self.parent_rows + 1, dtype=float)
        weights = ranks ** (-self.skew)
        weights /= weights.sum()
        # Shuffle which parent gets which rank so hot keys are scattered.
        perm = rng.permutation(self.parent_rows)
        values = rng.choice(self.parent_rows, size=n, p=weights)
        return (perm[values] + 1).astype(np.int64)


@dataclass
class CorrelatedFloat(ColumnGenerator):
    """A float column correlated with a previously generated base array.

    ``value = correlation * scaled(base) + (1 - correlation) * noise``,
    then mapped to ``[low, high)``.  Used to break AVI assumptions.
    """

    base_column: str
    low: float
    high: float
    correlation: float = 0.8

    def generate_correlated(
        self, base: np.ndarray, n: int, rng: np.random.Generator
    ) -> np.ndarray:
        if base.size != n:
            raise CatalogError("correlated base column has mismatched length")
        span = base.max() - base.min()
        scaled = (base - base.min()) / span if span > 0 else np.zeros(n)
        noise = rng.uniform(0.0, 1.0, size=n)
        mixed = self.correlation * scaled + (1.0 - self.correlation) * noise
        return self.low + mixed * (self.high - self.low)

    def generate(self, n, rng):  # pragma: no cover - needs base array
        raise CatalogError(
            "CorrelatedFloat must be generated through Database construction"
        )


@dataclass
class DictionaryString(ColumnGenerator):
    """A dictionary-encoded 'string' column: integer codes in [0, cardinality).

    Optionally Zipf-skewed code frequencies.
    """

    cardinality: int
    skew: float = 0.0

    def generate(self, n, rng):
        if self.cardinality < 1:
            raise CatalogError("DictionaryString requires cardinality >= 1")
        if self.skew <= 0:
            return rng.integers(0, self.cardinality, size=n, dtype=np.int64)
        ranks = np.arange(1, self.cardinality + 1, dtype=float)
        weights = ranks ** (-self.skew)
        weights /= weights.sum()
        return rng.choice(self.cardinality, size=n, p=weights).astype(np.int64)


@dataclass
class DateRange(ColumnGenerator):
    """Days since epoch, uniform in ``[start_day, end_day]``."""

    start_day: int
    end_day: int

    def generate(self, n, rng):
        if self.end_day < self.start_day:
            raise CatalogError("DateRange requires end_day >= start_day")
        return rng.integers(self.start_day, self.end_day + 1, size=n, dtype=np.int64)
