"""In-memory database: generated tables plus derived statistics.

A :class:`Database` holds one numpy array per column and can build the
optimizer-facing :class:`~repro.catalog.statistics.DatabaseStatistics`
either *exactly* (perfect statistics) or from a sample (stale/inaccurate
statistics), which is the knob that creates realistic estimation errors.
"""

from __future__ import annotations

import hashlib
import zlib
from typing import Dict, Mapping, Optional

import numpy as np

from ..catalog.schema import Schema
from ..catalog.statistics import (
    ColumnStatistics,
    DatabaseStatistics,
    TableStatistics,
)
from ..exceptions import CatalogError
from .generators import ColumnGenerator, CorrelatedFloat

#: Generator spec type: table -> column -> generator.
GeneratorSpec = Mapping[str, Mapping[str, ColumnGenerator]]


def _column_rng(root: np.random.SeedSequence, table: str, column: str) -> np.random.Generator:
    """Independent RNG stream per (table, column), stable across processes.

    Uses CRC32 (not Python's salted ``hash``) so the same seed always
    generates byte-identical databases — required for the repeatability
    guarantees this library makes."""
    key = zlib.crc32(f"{table}.{column}".encode("utf-8"))
    return np.random.default_rng(
        np.random.SeedSequence(entropy=root.entropy, spawn_key=(key,))
    )


class Database:
    """Generated relational data for a :class:`~repro.catalog.schema.Schema`."""

    def __init__(self, schema: Schema, tables: Dict[str, Dict[str, np.ndarray]]):
        self.schema = schema
        self._tables = tables
        self._fingerprint: Optional[str] = None
        for name, cols in tables.items():
            table = schema.table(name)
            lengths = {arr.size for arr in cols.values()}
            if len(lengths) > 1:
                raise CatalogError(f"ragged columns in generated table {name!r}")
            if lengths and lengths.pop() != table.row_count:
                raise CatalogError(
                    f"generated table {name!r} does not match catalog row count"
                )

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    @staticmethod
    def generate(schema: Schema, spec: GeneratorSpec, seed: int = 42) -> "Database":
        """Generate all tables of ``schema`` from the generator ``spec``.

        Generation is deterministic in ``seed``; each (table, column) pair
        gets an independent child RNG stream so adding a column does not
        reshuffle the others.
        """
        root = np.random.SeedSequence(seed)
        tables: Dict[str, Dict[str, np.ndarray]] = {}
        for tname in schema.table_names:
            table = schema.table(tname)
            col_spec = spec.get(tname)
            if col_spec is None:
                raise CatalogError(f"no generator spec for table {tname!r}")
            arrays: Dict[str, np.ndarray] = {}
            deferred = []
            for col in table.columns:
                gen = col_spec.get(col.name)
                if gen is None:
                    raise CatalogError(
                        f"no generator for column {tname}.{col.name}"
                    )
                if isinstance(gen, CorrelatedFloat):
                    deferred.append((col.name, gen))
                    continue
                rng = _column_rng(root, tname, col.name)
                arrays[col.name] = gen.generate(table.row_count, rng)
            for col_name, gen in deferred:
                if gen.base_column not in arrays:
                    raise CatalogError(
                        f"correlated column {tname}.{col_name} references missing "
                        f"base column {gen.base_column!r}"
                    )
                rng = _column_rng(root, tname, col_name)
                arrays[col_name] = gen.generate_correlated(
                    arrays[gen.base_column], table.row_count, rng
                )
            tables[tname] = arrays
        return Database(schema, tables)

    # ------------------------------------------------------------------
    # Access
    # ------------------------------------------------------------------

    def table(self, name: str) -> Dict[str, np.ndarray]:
        try:
            return self._tables[name]
        except KeyError:
            raise CatalogError(f"database has no table {name!r}") from None

    def column(self, table: str, column: str) -> np.ndarray:
        cols = self.table(table)
        try:
            return cols[column]
        except KeyError:
            raise CatalogError(f"table {table!r} has no column {column!r}") from None

    def row_count(self, table: str) -> int:
        return self.schema.table(table).row_count

    def fingerprint(self) -> str:
        """Content digest of every table's data, cached after first use.

        Distinguishes regenerated/different datasets so caches keyed on
        "which data am I looking at" (e.g. the execution service's
        cardinality cache) cannot serve stale answers.  If arrays are
        mutated in place, call :meth:`invalidate_fingerprint`.
        """
        if self._fingerprint is None:
            digest = hashlib.sha256()
            for tname in sorted(self._tables):
                digest.update(tname.encode("utf-8"))
                cols = self._tables[tname]
                for cname in sorted(cols):
                    digest.update(cname.encode("utf-8"))
                    arr = np.ascontiguousarray(cols[cname])
                    digest.update(str(arr.dtype).encode("utf-8"))
                    digest.update(arr.tobytes())
            self._fingerprint = digest.hexdigest()[:20]
        return self._fingerprint

    def invalidate_fingerprint(self) -> None:
        """Drop the cached fingerprint after in-place data mutation."""
        self._fingerprint = None

    # ------------------------------------------------------------------
    # Statistics
    # ------------------------------------------------------------------

    def build_statistics(
        self,
        sample_size: Optional[int] = None,
        buckets: int = 100,
        seed: int = 0,
    ) -> DatabaseStatistics:
        """Build optimizer statistics over every column.

        ``sample_size=None`` gives perfect statistics; a finite sample
        produces the realistic, error-prone variety.
        """
        stats = DatabaseStatistics()
        for tname in self.schema.table_names:
            table = self.schema.table(tname)
            tstats = TableStatistics(tname, table.row_count)
            for col in table.columns:
                arr = self.column(tname, col.name)
                tstats.set_column(
                    col.name,
                    ColumnStatistics.from_array(
                        arr, buckets=buckets, sample_size=sample_size, seed=seed
                    ),
                )
            stats.set_table(tstats)
        return stats

    def actual_selection_selectivity(self, table: str, column: str, op: str, value) -> float:
        """Ground-truth selectivity of ``table.column <op> value``."""
        arr = self.column(table, column)
        if op == "=":
            frac = float(np.mean(arr == value))
        elif op == "<":
            frac = float(np.mean(arr < value))
        elif op == "<=":
            frac = float(np.mean(arr <= value))
        elif op == ">":
            frac = float(np.mean(arr > value))
        elif op == ">=":
            frac = float(np.mean(arr >= value))
        elif op == "in":
            frac = float(np.mean(np.isin(arr, np.asarray(value))))
        else:
            raise CatalogError(f"unsupported operator {op!r}")
        return max(frac, 0.0)

    def actual_join_selectivity(
        self, left_table: str, left_column: str, right_table: str, right_column: str
    ) -> float:
        """Ground-truth join selectivity |L ⋈ R| / (|L| * |R|)."""
        left = self.column(left_table, left_column)
        right = self.column(right_table, right_column)
        values, left_counts = np.unique(left, return_counts=True)
        rvalues, right_counts = np.unique(right, return_counts=True)
        common, li, ri = np.intersect1d(values, rvalues, return_indices=True)
        if common.size == 0:
            return 0.0
        matches = float(np.dot(left_counts[li].astype(float), right_counts[ri].astype(float)))
        return matches / (left.size * right.size)
