"""Synthetic data generation."""

from .database import Database
from .generators import (
    ColumnGenerator,
    CorrelatedFloat,
    DateRange,
    DictionaryString,
    ForeignKeyRef,
    SequentialKey,
    UniformFloat,
    UniformInt,
    ZipfInt,
)

__all__ = [
    "Database",
    "ColumnGenerator",
    "CorrelatedFloat",
    "DateRange",
    "DictionaryString",
    "ForeignKeyRef",
    "SequentialKey",
    "UniformFloat",
    "UniformInt",
    "ZipfInt",
]
