"""repro — Plan Bouquets: query processing without selectivity estimation.

A complete reproduction of Dutt & Haritsa, SIGMOD 2014, including every
substrate the paper depends on: a cost-based optimizer with selectivity
injection, an instrumented budget-limited execution engine, synthetic
TPC-H / TPC-DS environments, POSP/plan-diagram machinery, anorexic
reduction, and the NAT/SEER baselines.

Typical usage (the :mod:`repro.api` facade)::

    from repro import BouquetConfig, Catalog, compile_bouquet, execute

    catalog = Catalog(schema, statistics=stats, database=db)
    compiled = compile_bouquet(sql, catalog, config=BouquetConfig(resolution=24))
    result = execute(compiled, db)

For cached, concurrent, multi-tenant serving see :mod:`repro.serve`
(``BouquetServer`` over a content-addressed ``BouquetArtifactStore``,
fronted by ``ServeGateway`` admission control and the asyncio
``BouquetFrontEnd`` speaking ``ServeRequest``/``ServeResponse``
envelopes); for paper-style ESS-wide experiment sweeps::

    from repro import Lab, simulate_at

    lab = Lab()
    ql = lab.build("3D_H_Q5")          # ESS + plan diagram + bouquet
    result = simulate_at(ql.bouquet, qa_location=(4, 7, 2))
    print(result.total_cost / ql.diagram.cost_at((4, 7, 2)))  # sub-optimality
"""

from .api import (
    DEFAULT_CONFIG,
    BouquetConfig,
    Catalog,
    CompiledBouquet,
    compile_bouquet,
    default_error_dimensions,
    execute,
    fuzz,
    generate_workload,
    simulate,
)
from .bench.harness import Lab, QueryLab, shared_lab
from .catalog import tpcds_schema, tpch_schema
from .core import (
    BouquetRunner,
    PlanBouquet,
    basic_cost_field,
    identify_bouquet,
    mso_bound_1d,
    mso_bound_multid,
    simulate_at,
)
from .core.advisor import ProcessingMode, Recommendation, recommend_processing_mode
from .core.maintenance import RefreshResult, refresh_bouquet
from .core.runtime import AbstractExecutionService
from .core.validation import ValidationReport, validate_bouquet
from .datagen import Database
from .ess import ErrorDimension, PlanDiagram, SelectivitySpace
from .exceptions import (
    BouquetError,
    BudgetExceeded,
    CatalogError,
    EssError,
    ExecutionError,
    OptimizerError,
    QueryError,
    ReproError,
)
from .executor import ExecutionEngine, RealExecutionService
from .obs import (
    NULL_TRACER,
    JsonlSink,
    MemorySink,
    TraceSummary,
    Tracer,
    read_trace,
    summarize_trace,
)
from .optimizer import (
    COMMERCIAL_COST_MODEL,
    POSTGRES_COST_MODEL,
    Optimizer,
    actual_selectivities,
    estimate_selectivities,
)
from .query import JoinPredicate, Query, SelectionPredicate, parse_query, render_sql
from .query.workload import TABLE2_NAMES, WorkloadQuery, full_workload
from .robustness import NativeOptimizerStrategy, ReoptStrategy, SeerStrategy
from .runtime import AsyncioRuntime, Runtime, SimulatedRuntime, SyncRuntime
from .serve import (
    ArtifactKey,
    BouquetArtifactStore,
    BouquetFrontEnd,
    BouquetServer,
    ServeGateway,
    ServeRequest,
    ServeResponse,
    ServeResult,
    TenantQuota,
)
from .template import (
    TemplateSignature,
    TemplateStore,
    rebind_compiled,
    template_signature,
)

__version__ = "1.0.0"

__all__ = [
    "BouquetConfig",
    "Catalog",
    "CompiledBouquet",
    "DEFAULT_CONFIG",
    "compile_bouquet",
    "default_error_dimensions",
    "execute",
    "fuzz",
    "generate_workload",
    "simulate",
    "ArtifactKey",
    "AsyncioRuntime",
    "BouquetArtifactStore",
    "BouquetFrontEnd",
    "BouquetServer",
    "Runtime",
    "ServeGateway",
    "ServeRequest",
    "ServeResponse",
    "ServeResult",
    "SimulatedRuntime",
    "SyncRuntime",
    "TenantQuota",
    "Lab",
    "QueryLab",
    "shared_lab",
    "tpcds_schema",
    "tpch_schema",
    "BouquetRunner",
    "PlanBouquet",
    "basic_cost_field",
    "identify_bouquet",
    "mso_bound_1d",
    "mso_bound_multid",
    "simulate_at",
    "AbstractExecutionService",
    "Database",
    "ErrorDimension",
    "PlanDiagram",
    "SelectivitySpace",
    "BouquetError",
    "BudgetExceeded",
    "CatalogError",
    "EssError",
    "ExecutionError",
    "OptimizerError",
    "QueryError",
    "ReproError",
    "ExecutionEngine",
    "RealExecutionService",
    "NULL_TRACER",
    "JsonlSink",
    "MemorySink",
    "TraceSummary",
    "Tracer",
    "read_trace",
    "summarize_trace",
    "COMMERCIAL_COST_MODEL",
    "POSTGRES_COST_MODEL",
    "Optimizer",
    "actual_selectivities",
    "estimate_selectivities",
    "JoinPredicate",
    "Query",
    "SelectionPredicate",
    "parse_query",
    "render_sql",
    "ProcessingMode",
    "Recommendation",
    "recommend_processing_mode",
    "RefreshResult",
    "refresh_bouquet",
    "TABLE2_NAMES",
    "WorkloadQuery",
    "full_workload",
    "NativeOptimizerStrategy",
    "ReoptStrategy",
    "SeerStrategy",
    "ValidationReport",
    "validate_bouquet",
    "TemplateSignature",
    "TemplateStore",
    "rebind_compiled",
    "template_signature",
]
