# Convenience targets for the plan-bouquet reproduction.

PYTHON ?= python

.PHONY: install test bench experiments examples all clean

install:
	$(PYTHON) -m pip install -e . --no-build-isolation

test:
	$(PYTHON) -m pytest tests/

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

experiments: bench
	$(PYTHON) benchmarks/assemble_experiments.py

examples:
	$(PYTHON) examples/quickstart.py
	$(PYTHON) examples/etl_unknown_stats.py
	$(PYTHON) examples/robust_dashboard.py
	$(PYTHON) examples/strategy_faceoff.py
	$(PYTHON) examples/canned_query_service.py
	$(PYTHON) examples/plan_diagram_gallery.py

all: test experiments examples

clean:
	rm -rf .pytest_cache .benchmarks results/*.txt
	find . -name __pycache__ -type d -exec rm -rf {} +
