# Convenience targets for the plan-bouquet reproduction.
#
#   make help         show this target summary
#   make install      editable install into the current environment
#   make test         run the unit/integration/property test suite
#   make lint         ruff check (imports + obvious-bug rules; config in
#                     pyproject.toml) — skips with a hint if ruff is absent
#   make bench        regenerate every paper table/figure
#   make experiments  bench + rebuild EXPERIMENTS.md
#   make examples     run the example scripts end to end
#   make all          test + experiments + examples
#   make clean        remove caches and generated results

PYTHON ?= python

.PHONY: help install test lint bench experiments examples all clean

help:
	@sed -n 's/^#   //p' Makefile

install:
	$(PYTHON) -m pip install -e . --no-build-isolation

test:
	$(PYTHON) -m pytest tests/

lint:
	@$(PYTHON) -c "import ruff" 2>/dev/null \
		&& $(PYTHON) -m ruff check src tests benchmarks examples \
		|| echo "ruff not installed; skipping (pip install ruff to enable)"

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

experiments: bench
	$(PYTHON) benchmarks/assemble_experiments.py

examples:
	$(PYTHON) examples/quickstart.py
	$(PYTHON) examples/etl_unknown_stats.py
	$(PYTHON) examples/robust_dashboard.py
	$(PYTHON) examples/strategy_faceoff.py
	$(PYTHON) examples/canned_query_service.py
	$(PYTHON) examples/plan_diagram_gallery.py

all: test experiments examples

clean:
	rm -rf .pytest_cache .benchmarks results/*.txt
	find . -name __pycache__ -type d -exec rm -rf {} +
