# Convenience targets for the plan-bouquet reproduction.
#
#   make help         show this target summary
#   make install      editable install into the current environment
#   make test         run the unit/integration/property test suite
#   make lint         ruff check (imports + obvious-bug rules; config in
#                     pyproject.toml) — skips with a hint if ruff is absent
#   make serve-smoke  compile-cache the canned workload twice; fail unless
#                     the warm pass is all cache hits and >= 5x faster
#   make check        lint + serve-smoke (the gated fast checks)
#   make ci           lint + every smoke gate (incl. both fuzz schemas
#                     and the parallel substrate) + the tier-1 pytest
#                     suite, in one gate
#   make bench-sched  benchmark the contour-crossing schedulers; writes
#                     BENCH_sched.json and fails on any acceptance miss
#   make bench-sweep  race the cohort sweep engine against the reference
#                     per-location driver; writes BENCH_sweep.json and
#                     fails under 5x speedup or above 1e-9 field error
#   make bench-compile race the slab-batched compile kernel against the
#                     scalar optimizer loop; writes BENCH_compile.json and
#                     fails under 4x speedup or on any plan/cost mismatch
#   make bench-drift  race the delta refresh engine against a from-scratch
#                     rebuild under statistics drift; writes BENCH_drift.json
#                     and fails above 20% re-planned locations, under 5x
#                     savings, or on any plan/cost/contour divergence
#   make bench-serve  load-test the async multi-tenant front-end (simulated
#                     + real-asyncio passes); writes BENCH_serve.json and
#                     fails on any silent drop or untyped response
#   make serve-load-smoke  fast simulated-only load gate: >= 2000 concurrent
#                     sessions, every request answered with a typed response
#   make fuzz-smoke   fast MSO fuzzing gate: 25 generated queries through the
#                     full pipeline, zero crashes / bound violations required
#   make fuzz-smoke-tpcds  same fuzzing gate over the TPC-DS snowflake
#                     schema (6 queries; exercises multi-FK fact tables)
#   make bench-par    race the persistent worker substrate against the
#                     per-call pools it replaced on a windowed 1000-query
#                     TPC-DS campaign; writes BENCH_par.json and fails
#                     under 2x speedup, on any result divergence across
#                     worker counts, or on a leaked shm segment
#   make par-smoke    fast substrate gate: small windowed campaign plus
#                     the shm residue phase; bit-identity and zero-leak
#                     gates enforced, speedup reported but not gated
#   make bench-template  benchmark the cross-query template cache: rebind
#                     vs. fresh compile on a templated wlgen workload;
#                     writes BENCH_template.json and fails under 5x speedup,
#                     on incomplete template coverage, or on any bit-level
#                     divergence from a fresh compile
#   make template-smoke  fast template-tier gate: nonzero template hits and
#                     zero equivalence violations on a small workload
#   make bench-workload  full fuzzing campaign: 200 generated queries with
#                     sensitivity-chosen ESS dims; writes BENCH_workload.json
#                     and fails on any crash or MSO above 4(1+lambda)rho
#   make bench        regenerate every paper table/figure
#   make experiments  bench + rebuild EXPERIMENTS.md
#   make examples     run the example scripts end to end
#   make all          test + experiments + examples
#   make clean        remove caches and generated results

PYTHON ?= python

.PHONY: help install test lint serve-smoke check ci bench-sched bench-sweep sweep-smoke bench-compile compile-smoke bench-drift drift-smoke bench-serve serve-load-smoke fuzz-smoke fuzz-smoke-tpcds bench-par par-smoke bench-template template-smoke bench-workload bench experiments examples all clean

help:
	@sed -n 's/^#   //p' Makefile

install:
	$(PYTHON) -m pip install -e . --no-build-isolation

test:
	$(PYTHON) -m pytest tests/

lint:
	@$(PYTHON) -c "import ruff" 2>/dev/null \
		&& $(PYTHON) -m ruff check src tests benchmarks examples \
		|| echo "ruff not installed; skipping (pip install ruff to enable)"

serve-smoke:
	PYTHONPATH=src $(PYTHON) -m repro serve-smoke

check: lint serve-smoke

ci: lint sweep-smoke compile-smoke drift-smoke serve-load-smoke fuzz-smoke fuzz-smoke-tpcds template-smoke par-smoke
	PYTHONPATH=src $(PYTHON) -m pytest -x -q

bench-sched:
	PYTHONPATH=src $(PYTHON) -m repro.bench.sched --out BENCH_sched.json

bench-sweep:
	PYTHONPATH=src $(PYTHON) -m repro.bench.sweep --out BENCH_sweep.json

# Small-grid sanity pass of the sweep bench (equality gate only; the
# tiny grid cannot amortize batching, so no speedup floor is enforced).
sweep-smoke:
	PYTHONPATH=src $(PYTHON) -m repro.bench.sweep --resolution 5 \
		--stats-sample 600 --sample 25 --min-speedup 0.0

bench-compile:
	PYTHONPATH=src $(PYTHON) -m repro.bench.compile --out BENCH_compile.json

# Small-grid sanity pass of the compile bench (exactness gate only).
compile-smoke:
	PYTHONPATH=src $(PYTHON) -m repro.bench.compile --resolution 5 \
		--stats-sample 600 --min-speedup 0.0

bench-drift:
	PYTHONPATH=src $(PYTHON) -m repro.bench.drift --out BENCH_drift.json

# Smaller-grid pass of the drift bench with the same three gates
# (locality, savings, bit-exact equivalence).
drift-smoke:
	PYTHONPATH=src $(PYTHON) -m repro.bench.drift --resolution 10

bench-serve:
	PYTHONPATH=src $(PYTHON) -m repro.bench.serve_load --real-server \
		--out BENCH_serve.json

# Fast simulated-only pass of the serve load harness (zero-silent-drop
# and >= 2000 concurrent session gates; deterministic, sub-second).
serve-load-smoke:
	PYTHONPATH=src $(PYTHON) -m repro.bench.serve_load --smoke

# Fast pass of the workload fuzzer (same zero-crash / zero-violation
# gates as bench-workload, on a 25-query campaign; deterministic).
fuzz-smoke:
	PYTHONPATH=src $(PYTHON) -m repro.bench.workload --count 25

# The same fuzzing gates over the TPC-DS snowflake schema — multi-FK
# fact tables stress join-tree sampling and template canonicalization.
fuzz-smoke-tpcds:
	PYTHONPATH=src $(PYTHON) -m repro.bench.workload --count 6 \
		--benchmark tpcds

bench-par:
	PYTHONPATH=src $(PYTHON) -m repro.bench.par --out BENCH_par.json

# Fast pass of the parallel-substrate bench (bit-identity across worker
# counts, shm residue equality, zero-leak gates; no speedup floor — the
# tiny campaign cannot amortize anything meaningfully).
par-smoke:
	PYTHONPATH=src $(PYTHON) -m repro.bench.par --smoke

bench-template:
	PYTHONPATH=src $(PYTHON) -m repro.bench.template --out BENCH_template.json

# Fast pass of the template bench (coverage + bit-exact equivalence
# gates; the tiny workload's speedup is reported but not enforced).
template-smoke:
	PYTHONPATH=src $(PYTHON) -m repro.bench.template --smoke

bench-workload:
	PYTHONPATH=src $(PYTHON) -m repro.bench.workload --count 200 \
		--workers 4 --out BENCH_workload.json

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

experiments: bench
	$(PYTHON) benchmarks/assemble_experiments.py

examples:
	$(PYTHON) examples/quickstart.py
	$(PYTHON) examples/etl_unknown_stats.py
	$(PYTHON) examples/robust_dashboard.py
	$(PYTHON) examples/strategy_faceoff.py
	$(PYTHON) examples/canned_query_service.py
	$(PYTHON) examples/async_service.py
	$(PYTHON) examples/plan_diagram_gallery.py

all: test experiments examples

clean:
	rm -rf .pytest_cache .benchmarks results/*.txt
	find . -name __pycache__ -type d -exec rm -rf {} +
